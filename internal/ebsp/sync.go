package ebsp

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/profile"
	"ripple/internal/trace"
)

// partMetaKey addresses the completed-step record of one part in the
// recovery meta table; it is pinned to its part.
type partMetaKey struct{ Part int }

// KeyHash implements codec.KeyHasher.
func (k partMetaKey) KeyHash() uint64 { return uint64(k.Part) }

// aggPartialKey addresses one part's partial aggregations for one step in
// the auxiliary aggregation table (large-aggregator-set path).
type aggPartialKey struct {
	Step int
	Part int
}

// KeyHash implements codec.KeyHasher.
func (k aggPartialKey) KeyHash() uint64 { return uint64(k.Part) }

func init() {
	codec.Register(partMetaKey{})
	codec.Register(aggPartialKey{})
	codec.Register(map[string]any{})
}

// runSync executes the job with synchronization barriers between steps
// (paper §IV-A): spills through the transport table, barrier, deliver,
// compute, repeat until no components are enabled.
func (run *jobRun) runSync(lc *LoadContext) (*Result, error) {
	if err := run.writeInitialSpills(lc); err != nil {
		return nil, err
	}
	if err := run.setupAggTables(); err != nil {
		return nil, err
	}
	// A step-0 checkpoint makes the job recoverable from the very start, so
	// a failover before the first periodic checkpoint can still heal-and-
	// rerun instead of failing the job.
	if run.engine.checkpointEvery > 0 {
		if err := run.checkpoint(0, int64(len(lc.envs))); err != nil {
			return nil, err
		}
	}
	return run.syncLoop(0, int64(len(lc.envs)))
}

// setupAggTables creates the "couple of auxiliary tables" (§IV-A) when the
// job has more aggregators than the client-side threshold: per-part
// partials, and a ubiquitous results table every part can read locally next
// step.
func (run *jobRun) setupAggTables() error {
	if len(run.job.Aggregators) <= run.engine.aggTabTh {
		return nil
	}
	partialsName := run.transport.Name() + ".aggpartials"
	t, err := run.engine.store.CreateTable(partialsName, kvstore.ConsistentWith(run.placement.Name()))
	if err != nil {
		return fmt.Errorf("ebsp: create aggregation table: %w", err)
	}
	run.privateTables = append(run.privateTables, partialsName)
	run.aggPartials = t

	resultsName := run.transport.Name() + ".aggresults"
	aggResults, err := run.engine.store.CreateTable(resultsName, kvstore.Ubiquitous())
	if err != nil {
		return fmt.Errorf("ebsp: create aggregation results table: %w", err)
	}
	run.privateTables = append(run.privateTables, resultsName)
	run.aggResults = aggResults
	for name, v := range run.aggPrev {
		name, v := name, v
		if err := run.engine.retryOp(run.job.Name, -1, -1, func() error {
			return aggResults.Put(name, v)
		}); err != nil {
			return err
		}
	}
	return nil
}

// syncLoop drives the step/barrier loop from a completed step with `pending`
// undelivered envelopes; it also services checkpointing.
func (run *jobRun) syncLoop(completedStep int, pending int64) (*Result, error) {
	steps := completedStep
	aborted := false
	for pending > 0 {
		if err := run.ctx.Err(); err != nil {
			return nil, fmt.Errorf("ebsp: job %q cancelled after step %d: %w", run.job.Name, steps, err)
		}
		if run.job.MaxSteps > 0 && steps >= run.job.MaxSteps {
			break
		}
		step := steps + 1
		stepStart := time.Now()
		run.engine.tracer.RecordSpan(trace.Span{Kind: trace.KindStepStart, Job: run.job.Name,
			Step: step, Part: -1, N: pending,
			Trace: run.traceID, Span: run.spanID(step, -1), Parent: run.rootSpan})
		emitted, aggs, err := run.execStep(step)
		if err != nil {
			return nil, err
		}
		steps = step
		run.lastStep = step
		// Detect a failover that happened during the step before trusting
		// (or checkpointing) its writes.
		if ferr := run.checkFailover(step); ferr != nil {
			return nil, ferr
		}
		stepDur := time.Since(stepStart)
		run.engine.metrics.AddSteps(1)
		run.engine.metrics.AddBarriers(1)
		run.engine.metrics.StepDurations().ObserveDuration(stepDur)
		run.engine.metrics.InFlightEnvelopes().Set(emitted)
		run.engine.tracer.RecordSpan(trace.Span{Kind: trace.KindStepEnd, Job: run.job.Name,
			Step: step, Part: -1, N: emitted, Dur: stepDur,
			Trace: run.traceID, Span: run.spanID(step, -1), Parent: run.rootSpan})
		run.log.Debug("step complete", "step", step, "emitted", emitted, "dur", stepDur)
		run.aggPrev = aggs
		if err := run.notifyStep(StepInfo{
			Job:        run.job.Name,
			Step:       step,
			Emitted:    emitted,
			Aggregates: aggs,
			Duration:   stepDur,
		}); err != nil {
			return nil, err
		}
		if run.aggResults != nil {
			run.engine.metrics.AddAggregationRounds(1)
			for name, v := range aggs {
				name, v := name, v
				if err := run.engine.retryOp(run.job.Name, step, -1, func() error {
					return run.aggResults.Put(name, v)
				}); err != nil {
					return nil, err
				}
			}
		}
		// Checkpoint before consulting the aborter, so an aborted job can
		// still be resumed from this barrier.
		if run.engine.checkpointEvery > 0 && emitted > 0 && step%run.engine.checkpointEvery == 0 {
			ckptStart := time.Now()
			if err := run.checkpoint(step, emitted); err != nil {
				return nil, err
			}
			ckptDur := time.Since(ckptStart)
			run.engine.metrics.CheckpointWrites().ObserveDuration(ckptDur)
			run.engine.tracer.RecordSpan(trace.Span{Kind: trace.KindCheckpoint, Job: run.job.Name,
				Step: step, Part: -1, N: emitted, Dur: ckptDur,
				Trace: run.traceID, Parent: run.rootSpan})
			run.log.Debug("checkpoint written", "step", step, "pending", emitted, "dur", ckptDur)
		}
		if run.job.Aborter != nil && run.job.Aborter.ShouldAbort(step, aggs) {
			aborted = true
			break
		}
		pending = emitted
	}
	if run.engine.checkpointEvery > 0 && !aborted {
		run.dropCheckpoint()
	}
	return &Result{Steps: steps, Aggregates: run.aggPrev, Aborted: aborted}, nil
}

// writeInitialSpills turns the loaders' initial messages and enablements into
// step-1 spills in the transport table.
func (run *jobRun) writeInitialSpills(lc *LoadContext) error {
	if len(lc.envs) == 0 {
		return nil
	}
	byDst := make(map[int][]envelope)
	for _, env := range lc.envs {
		if run.sampled {
			// Loader-injected envelopes descend from the load span.
			env.Trace, env.Span = run.traceID, run.loadSpan
		}
		dst := run.placement.PartOf(env.Dst)
		byDst[dst] = append(byDst[dst], env)
	}
	dsts := make([]int, 0, len(byDst))
	for dst := range byDst {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	errs := make([]error, len(dsts))
	var wg sync.WaitGroup
	for i, dst := range dsts {
		wg.Add(1)
		go func(i, dst int) {
			defer wg.Done()
			// Attributed to (step 1, dst): the fault delays that part's
			// step-1 input.
			errs[i] = run.engine.retryOp(run.job.Name, 1, dst, func() error {
				return run.transport.Put(spillKey{Step: 1, Dst: dst, Src: -1}, byDst[dst])
			})
		}(i, dst)
		run.engine.metrics.AddSpills(1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("ebsp: initial spill: %w", err)
		}
	}
	// lc.envs also carries Enable markers (kindContinue) and CreateState
	// requests; only the loader's actual messages count as sent.
	run.engine.metrics.AddMessagesSent(lc.messages)
	return nil
}

// partStepResult is what one part's step execution reports back.
type partStepResult struct {
	emitted int64
	aggs    map[string]any
	envs    []envelope // run-anywhere: drained data envelopes for the pool
	invoked int64      // compute invocations (enabled components) this step
	merged  int64      // messages eliminated by the combiner (both sides) this step
	dur     time.Duration

	// Profiler-only measurements (zero unless a profiler is attached).
	startNS   int64         // profiler clock at part start
	drainWait time.Duration // time blocked draining spills
	msgsIn    int64         // envelopes delivered to this part
	gets      int64         // state-table gets
	puts      int64         // state-table puts
	bytes     int64         // encoded size of cross-part spill batches
}

// execStep runs one step across all parts and merges the aggregations.
// It returns the number of envelopes emitted for the next step.
func (run *jobRun) execStep(step int) (int64, map[string]any, error) {
	if run.strategy.RunAnywhere {
		return run.execStepRunAnywhere(step)
	}
	results := make([]*partStepResult, run.parts)
	errs := make([]error, run.parts)
	var wg sync.WaitGroup
	for p := 0; p < run.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			results[p], errs[p] = run.execPartStep(step, p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var emitted int64
	for _, r := range results {
		emitted += r.emitted
	}
	run.observePartStats(step, results)
	aggs, err := run.mergeAggregations(step, results)
	if err != nil {
		return 0, nil, err
	}
	return emitted, aggs, nil
}

// observePartStats publishes one step's per-part measurements: compute-time
// and barrier-wait histograms (each part idles behind the step's slowest
// part), per-part spans, profiler records, skew gauges, the combiner's
// effectiveness, and the enabled-component gauge (selective enablement in
// action).
func (run *jobRun) observePartStats(step int, results []*partStepResult) {
	m := run.engine.metrics
	tr := run.engine.tracer
	prof := run.engine.prof
	if m == nil && tr == nil && prof == nil {
		return
	}
	var slowest, fastest time.Duration
	var invoked int64
	straggler := 0
	for i, r := range results {
		if i == 0 || r.dur < fastest {
			fastest = r.dur
		}
		if r.dur > slowest {
			slowest = r.dur
			straggler = i
		}
		invoked += r.invoked
	}
	stepSpan := run.spanID(step, -1)
	for p, r := range results {
		m.PartComputes().ObserveDuration(r.dur)
		m.BarrierWaits().ObserveDuration(slowest - r.dur)
		tr.RecordSpan(trace.Span{Kind: trace.KindPartCompute, Job: run.job.Name,
			Step: step, Part: p, N: r.invoked, Dur: r.dur,
			Trace: run.traceID, Span: run.spanID(step, p), Parent: stepSpan})
		if r.merged > 0 {
			tr.RecordSpan(trace.Span{Kind: trace.KindCombinerMerge, Job: run.job.Name,
				Step: step, Part: p, N: r.merged,
				Trace: run.traceID, Parent: run.spanID(step, p)})
		}
		prof.Record(profile.StepProfile{
			Job:             run.job.Name,
			Step:            step,
			Part:            p,
			StartNS:         r.startNS,
			ComputeNS:       int64(r.dur),
			BarrierWaitNS:   int64(slowest - r.dur),
			QueueWaitNS:     int64(r.drainWait),
			MsgsIn:          r.msgsIn,
			MsgsOut:         r.emitted,
			MarshalledBytes: r.bytes,
			CombinerHits:    r.merged,
			StoreGets:       r.gets,
			StorePuts:       r.puts,
			Enabled:         r.invoked,
		})
	}
	m.EnabledComponents().Set(invoked)
	m.StepSkewRatio().Set(stepSkewRatio(results, slowest))
	m.StragglerPart().Set(int64(straggler))
	tr.RecordSpan(trace.Span{Kind: trace.KindBarrier, Job: run.job.Name,
		Step: step, Part: -1, N: int64(len(results)), Dur: slowest - fastest,
		Trace: run.traceID, Parent: stepSpan})
}

// stepSkewRatio computes max/median part compute time for one step's results
// (1 when the median is zero or there are no results).
func stepSkewRatio(results []*partStepResult, slowest time.Duration) float64 {
	if len(results) == 0 {
		return 1
	}
	durs := make([]time.Duration, len(results))
	for i, r := range results {
		durs[i] = r.dur
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	// True median: average the two middle elements for even part counts
	// (taking the lower middle overstates skew on 2-part jobs).
	median := durs[len(durs)/2]
	if len(durs)%2 == 0 {
		median = (durs[len(durs)/2-1] + median) / 2
	}
	if median <= 0 {
		return 1
	}
	return float64(slowest) / float64(median)
}

// execPartStep runs one part's share of a step, with replay-based recovery
// when the strategy calls for it.
func (run *jobRun) execPartStep(step, part int) (*partStepResult, error) {
	if !run.strategy.FastRecovery {
		// Dispatch-entry faults are transient and happen before any agent
		// code runs, so retrying the dispatch is safe. Transient failures
		// from inside the agent are retried (and, when exhausted, de-tagged)
		// at their own operation, so they never reach this retry.
		var res any
		err := run.engine.retryOp(run.job.Name, step, part, func() error {
			var aerr error
			res, aerr = run.engine.store.RunAgent(run.placement.Name(), part, run.stepAgent(step, part))
			return aerr
		})
		if err != nil {
			return nil, err
		}
		return res.(*partStepResult), nil
	}
	tx := run.engine.store.(kvstore.Transactional)
	var lastErr error
	for attempt := 0; attempt <= run.engine.retries; attempt++ {
		res, err := tx.RunTransaction(run.placement.Name(), part, run.recoveryAgent(step, part))
		if err == nil {
			return res.(*partStepResult), nil
		}
		switch {
		case errors.Is(err, kvstore.ErrShardFailed):
			// The shard's primary failed: the transaction rolled back (its
			// local writes and spill deletions are undone), and spills it
			// wrote to other parts are idempotent (keyed by step/src/dst),
			// so — because the job is deterministic — simply replaying the
			// part's step is correct (paper §IV-A fault-tolerance outline).
			run.recoveries.Add(1)
			run.engine.metrics.AddRecoveries(1)
			run.engine.prof.AddFault(run.job.Name, step, part)
			run.engine.prof.AddRetry(run.job.Name, step, part)
			run.log.Warn("shard failed, replaying part step", "step", step, "part", part)
		case isTransient(err):
			// Transient dispatch fault: nothing ran; replay after backoff.
			// Recorded unconditionally — the tail policy keeps fault/retry
			// spans even for head-unsampled runs — with trace context
			// attached when the run has one.
			run.engine.metrics.AddRetries(1)
			run.engine.tracer.RecordSpan(trace.Span{Kind: trace.KindRetry, Job: run.job.Name,
				Step: step, Part: part, N: int64(attempt + 1),
				Trace: run.traceID, Parent: run.spanID(step, part)})
			run.log.Warn("transient fault, replaying part step",
				"step", step, "part", part, "attempt", attempt+1, "err", err)
			run.engine.prof.AddFault(run.job.Name, step, part)
			run.engine.prof.AddRetry(run.job.Name, step, part)
			time.Sleep(run.engine.backoffFor(run.job.Name, step, part, attempt+1))
		default:
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("ebsp: part %d step %d unrecovered after %d replays: %w",
		part, step, run.engine.retries, lastErr)
}

// recoveryAgent wraps the step agent to also record the part's completed
// step in the meta table, inside the same transaction.
func (run *jobRun) recoveryAgent(step, part int) kvstore.Agent {
	inner := run.stepAgent(step, part)
	return func(sv kvstore.ShardView) (any, error) {
		res, err := inner(sv)
		if err != nil {
			return nil, err
		}
		meta, err := sv.View(run.metaTable.Name())
		if err != nil {
			return nil, err
		}
		if err := meta.Put(partMetaKey{Part: part}, step); err != nil {
			return nil, err
		}
		return res, nil
	}
}

// stepAgent is the mobile code for one part's step: drain spills, deliver,
// invoke computes, flush outgoing spills.
func (run *jobRun) stepAgent(step, part int) kvstore.Agent {
	return func(sv kvstore.ShardView) (res any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("ebsp: part %d step %d: compute panicked: %v", part, step, r)
			}
		}()
		prof := run.engine.prof
		partStart := time.Now()
		startNS := prof.Now()
		transport, err := sv.View(run.transport.Name())
		if err != nil {
			return nil, err
		}
		envs, err := drainSpills(transport, step)
		drainWait := time.Since(partStart)
		if err != nil {
			return nil, err
		}
		run.recordDeliverEdges(step, part, envs)
		ls, err := run.partViews(sv)
		if err != nil {
			return nil, err
		}
		var state stateAccess = ls
		var counted *countingState
		if prof != nil {
			counted = &countingState{inner: state}
			state = counted
		}
		bview, err := run.broadcastView(sv)
		if err != nil {
			return nil, err
		}
		aggPrev, err := run.readAggPrev(sv)
		if err != nil {
			return nil, err
		}

		if err := run.applyCreates(envs, state); err != nil {
			return nil, err
		}

		out := newOutBuffer(part, run.parts, run.placement.PartOf, run.job.combiner())
		if run.sampled {
			out.trace, out.span = run.traceID, run.spanID(step, part)
		}
		aggLocal := make(map[string]any)
		var invoked, merged int64
		invoke := func(key any, msgs []any, continued bool) error {
			invoked++
			prof.ObserveKey(run.job.Name, key, int64(len(msgs)))
			return run.invokeCompute(&Context{
				run:       run,
				step:      step,
				key:       key,
				msgs:      msgs,
				continued: continued,
				state:     state,
				out:       out,
				aggPrev:   aggPrev,
				aggLocal:  aggLocal,
				broadcast: bview,
			}, out)
		}
		countCombined := func(n int64) {
			merged += n
			run.engine.metrics.AddMessagesCombined(n)
		}

		if run.strategy.Collect {
			err = deliverCollected(envs, run.strategy.Sort, run.job.combiner(), countCombined, invoke)
		} else {
			err = deliverUncollected(envs, run.strategy.Sort, run.job.Properties.OneMsg, invoke)
		}
		if err != nil {
			return nil, err
		}

		if err := out.flushSpills(run, step+1, run.transport, transport); err != nil {
			return nil, err
		}
		if err := out.exportDirect(run); err != nil {
			return nil, err
		}
		result := &partStepResult{
			emitted: out.count, aggs: aggLocal,
			invoked: invoked, merged: merged + out.combined, dur: time.Since(partStart),
			startNS: startNS, drainWait: drainWait, msgsIn: int64(len(envs)),
			bytes: out.bytes,
		}
		if counted != nil {
			result.gets = counted.gets.Load()
			result.puts = counted.puts.Load()
		}
		if run.debugEnabled() {
			run.partLogger(step, part).Debug("part step done",
				"invoked", invoked, "msgs_in", len(envs), "emitted", out.count)
		}
		if run.aggPartials != nil {
			partials, err := sv.View(run.aggPartials.Name())
			if err != nil {
				return nil, err
			}
			if err := partials.Put(aggPartialKey{Step: step, Part: part}, aggLocal); err != nil {
				return nil, err
			}
			result.aggs = nil // merged through the table path instead
		}
		return result, nil
	}
}

// invokeCompute runs one component invocation: compute, continue-signal
// handling, and write-back finalization.
func (run *jobRun) invokeCompute(ctx *Context, out outSink) error {
	run.engine.metrics.AddComputeInvocations(1)
	cont := run.job.Compute.Compute(ctx)
	if err := ctx.finish(); err != nil {
		return fmt.Errorf("ebsp: component %v step %d: %w", ctx.key, ctx.step, err)
	}
	if cont {
		if run.job.Properties.NoContinue {
			return fmt.Errorf("%w: no-continue job returned the positive continue signal (key %v)",
				ErrPropertyViolated, ctx.key)
		}
		// The continue signal is a special kind of BSP message to self
		// (§IV-A): the basic mechanism is driven purely by messages.
		out.add(envelope{Dst: ctx.key, Kind: kindContinue}, run)
	}
	return nil
}

// drainSpills reads and deletes this part's spills for the given step,
// returning the envelopes in deterministic (source, sequence) order.
func drainSpills(transport kvstore.PartView, step int) ([]envelope, error) {
	type batch struct {
		key  spillKey
		envs []envelope
	}
	var batches []batch
	err := transport.Enumerate(func(k, v any) (bool, error) {
		sk, ok := k.(spillKey)
		if !ok || sk.Step != step {
			// Spills for the following step may already be arriving from
			// parts that are ahead; leave them.
			return false, nil
		}
		batches = append(batches, batch{key: sk, envs: v.([]envelope)})
		return false, nil
	})
	if err != nil {
		return nil, fmt.Errorf("ebsp: drain spills: %w", err)
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i].key.Src < batches[j].key.Src })
	var envs []envelope
	for _, b := range batches {
		envs = append(envs, b.envs...)
		if err := transport.Delete(b.key); err != nil {
			return nil, fmt.Errorf("ebsp: delete spill: %w", err)
		}
	}
	return envs, nil
}

// applyCreates applies the CreateState requests among the envelopes,
// combining conflicts with the job's state combiner (last-writer-wins in
// deterministic order without one).
func (run *jobRun) applyCreates(envs []envelope, state stateAccess) error {
	sc := run.job.stateCombiner()
	for _, env := range envs {
		if env.Kind != kindCreate {
			continue
		}
		cp := env.Val.(createPayload)
		if cp.Tab < 0 || cp.Tab >= len(run.stateTables) {
			return fmt.Errorf("%w: CreateState table index %d of %d", ErrBadJob, cp.Tab, len(run.stateTables))
		}
		newState := cp.State
		if existing, ok, err := state.get(cp.Tab, env.Dst); err != nil {
			return err
		} else if ok && sc != nil {
			newState = sc.CombineStates(env.Dst, existing, newState)
		}
		if err := state.put(cp.Tab, env.Dst, newState); err != nil {
			return err
		}
	}
	return nil
}

// inbox collects one component's delivery for a step.
type inbox struct {
	key     any
	msgs    []any
	enabled bool // saw a continue marker
}

// deliverCollected groups envelopes into per-component value lists (the
// "(key, value list) pairs ... in an appropriate local table", §IV-A) and
// invokes each enabled component once.
func deliverCollected(envs []envelope, ordered bool, combiner MessageCombiner,
	countCombined func(int64), invoke func(key any, msgs []any, continued bool) error) error {

	index := make(map[any]*inbox)
	var order []*inbox
	lookup := func(key any) *inbox {
		ib, ok := index[key]
		if !ok {
			ib = &inbox{key: key}
			index[key] = ib
			order = append(order, ib)
		}
		return ib
	}
	for _, env := range envs {
		switch env.Kind {
		case kindData:
			ib := lookup(env.Dst)
			if combiner != nil && len(ib.msgs) > 0 {
				ib.msgs[len(ib.msgs)-1] = combiner.CombineMessages(env.Dst, ib.msgs[len(ib.msgs)-1], env.Val)
				countCombined(1)
			} else {
				ib.msgs = append(ib.msgs, env.Val)
			}
		case kindContinue:
			lookup(env.Dst).enabled = true
		case kindCreate:
			// already applied
		}
	}
	if ordered {
		sort.Slice(order, func(i, j int) bool {
			return codec.CompareKeys(order[i].key, order[j].key) < 0
		})
	}
	for _, ib := range order {
		if err := invoke(ib.key, ib.msgs, ib.enabled); err != nil {
			return err
		}
	}
	return nil
}

// deliverUncollected is the no-collect special case (§II-A): with at most one
// message per destination and step and no continue signals, each envelope is
// an invocation — no value lists are built.
func deliverUncollected(envs []envelope, ordered, oneMsg bool,
	invoke func(key any, msgs []any, continued bool) error) error {

	data := envs[:0:0]
	for _, env := range envs {
		switch env.Kind {
		case kindData, kindContinue:
			// A loader may Enable components even in a no-collect job; a
			// continue marker is an invocation with no messages.
			data = append(data, env)
		}
	}
	if ordered {
		sort.SliceStable(data, func(i, j int) bool {
			return codec.CompareKeys(data[i].Dst, data[j].Dst) < 0
		})
	}
	if oneMsg {
		seen := make(map[any]bool, len(data))
		for _, env := range data {
			if env.Kind == kindData && keyComparable(env.Dst) {
				if seen[env.Dst] {
					return fmt.Errorf("%w: one-msg job received two messages for key %v",
						ErrPropertyViolated, env.Dst)
				}
				seen[env.Dst] = true
			}
		}
	}
	msgBuf := make([]any, 1)
	for _, env := range data {
		if env.Kind == kindContinue {
			if err := invoke(env.Dst, nil, true); err != nil {
				return err
			}
			continue
		}
		msgBuf[0] = env.Val
		if err := invoke(env.Dst, msgBuf, false); err != nil {
			return err
		}
	}
	return nil
}

// execStepRunAnywhere executes one step with work stealing (§II-A
// run-anywhere): envelopes are drained per part, then processed by a global
// worker pool that may run any component's compute anywhere, accessing its
// (rarely used) state remotely.
func (run *jobRun) execStepRunAnywhere(step int) (int64, map[string]any, error) {
	// Phase A: drain each part's spills and apply creates locally.
	drained := make([][]envelope, run.parts)
	errs := make([]error, run.parts)
	var wg sync.WaitGroup
	for p := 0; p < run.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var res any
			err := run.engine.retryOp(run.job.Name, step, p, func() error {
				var aerr error
				res, aerr = run.engine.store.RunAgent(run.placement.Name(), p, func(sv kvstore.ShardView) (any, error) {
					return run.drainForSteal(sv, step, p)
				})
				return aerr
			})
			if err != nil {
				errs[p] = err
				return
			}
			drained[p] = res.([]envelope)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}

	var tasks []envelope
	for _, envs := range drained {
		tasks = append(tasks, envs...)
	}
	// Under work stealing each data envelope is exactly one invocation.
	run.engine.metrics.EnabledComponents().Set(int64(len(tasks)))

	// Phase B: a worker pool steals tasks without regard to placement.
	workers := runtime.NumCPU()
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	if workers == 0 {
		return 0, run.mergePlainAggs(nil), nil
	}
	prof := run.engine.prof
	remote := &remoteState{tables: run.stateTables}
	var next atomic.Int64
	outs := make([]*outBuffer, workers)
	aggs := make([]map[string]any, workers)
	werrs := make([]error, workers)
	starts := make([]int64, workers)
	durs := make([]time.Duration, workers)
	taken := make([]int64, workers)
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			defer func() {
				if r := recover(); r != nil {
					werrs[w] = fmt.Errorf("ebsp: run-anywhere worker %d: compute panicked: %v", w, r)
				}
			}()
			wStart := time.Now()
			starts[w] = prof.Now()
			defer func() { durs[w] = time.Since(wStart) }()
			// Pseudo-source part beyond the real parts keeps spill keys
			// unique per writer.
			out := newOutBuffer(run.parts+w, run.parts, run.placement.PartOf, run.job.combiner())
			if run.sampled {
				out.trace, out.span = run.traceID, run.spanID(step, run.parts+w)
			}
			outs[w] = out
			aggLocal := make(map[string]any)
			aggs[w] = aggLocal
			msgBuf := make([]any, 1)
			for {
				i := next.Add(1) - 1
				if i >= int64(len(tasks)) {
					return
				}
				taken[w]++
				env := tasks[i]
				msgBuf[0] = env.Val
				prof.ObserveKey(run.job.Name, env.Dst, 1)
				ctx := &Context{
					run:      run,
					step:     step,
					key:      env.Dst,
					msgs:     msgBuf,
					state:    remote,
					out:      out,
					aggPrev:  run.aggPrev,
					aggLocal: aggLocal,
				}
				if run.refTable != nil {
					ctx.broadcast = &remoteBroadcast{table: run.refTable}
				}
				if err := run.invokeCompute(ctx, out); err != nil {
					werrs[w] = err
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	for _, err := range werrs {
		if err != nil {
			return 0, nil, err
		}
	}

	var emitted int64
	for _, out := range outs {
		if out == nil {
			continue
		}
		if err := out.flushSpills(run, step+1, run.transport, nil); err != nil {
			return 0, nil, err
		}
		if err := out.exportDirect(run); err != nil {
			return 0, nil, err
		}
		emitted += out.count
	}
	if run.sampled {
		// Worker-slot compute spans, numbered beyond the real parts like
		// the profiler records: stolen computes still resolve as producers.
		stepSpan := run.spanID(step, -1)
		for w := 0; w < workers; w++ {
			run.engine.tracer.RecordSpan(trace.Span{Kind: trace.KindPartCompute,
				Job: run.job.Name, Step: step, Part: run.parts + w,
				N: taken[w], Dur: durs[w],
				Trace: run.traceID, Span: run.spanID(step, run.parts+w), Parent: stepSpan})
		}
	}
	if prof != nil {
		// Under work stealing computes detach from their parts, so each
		// worker slot gets a record instead, numbered beyond the real parts.
		var slowest time.Duration
		for _, d := range durs {
			if d > slowest {
				slowest = d
			}
		}
		for w := 0; w < workers; w++ {
			p := profile.StepProfile{
				Job:           run.job.Name,
				Step:          step,
				Part:          run.parts + w,
				StartNS:       starts[w],
				ComputeNS:     int64(durs[w]),
				BarrierWaitNS: int64(slowest - durs[w]),
				MsgsIn:        taken[w],
				Enabled:       taken[w],
			}
			if outs[w] != nil {
				p.MsgsOut = outs[w].count
				p.CombinerHits = outs[w].combined
				p.MarshalledBytes = outs[w].bytes
			}
			prof.Record(p)
		}
	}
	merged := run.mergePlainAggs(aggs)
	return emitted, merged, nil
}

// drainForSteal is the run-anywhere drain agent: read and delete one part's
// spills, apply creates locally, and hand the data envelopes to the pool.
func (run *jobRun) drainForSteal(sv kvstore.ShardView, step, part int) ([]envelope, error) {
	transport, err := sv.View(run.transport.Name())
	if err != nil {
		return nil, err
	}
	envs, err := drainSpills(transport, step)
	if err != nil {
		return nil, err
	}
	// Deliver edges use the owning part's coordinates even though the
	// computes may be stolen: causally, the messages arrived here.
	run.recordDeliverEdges(step, part, envs)
	state, err := run.partViews(sv)
	if err != nil {
		return nil, err
	}
	if err := run.applyCreates(envs, state); err != nil {
		return nil, err
	}
	data := envs[:0:0]
	for _, env := range envs {
		if env.Kind == kindData {
			data = append(data, env)
		}
	}
	return data, nil
}

// remoteBroadcast adapts a whole-table handle to the PartView shape Context
// uses for broadcast reads.
type remoteBroadcast struct {
	table kvstore.Table
}

var _ kvstore.PartView = (*remoteBroadcast)(nil)

func (rb *remoteBroadcast) Table() string { return rb.table.Name() }
func (rb *remoteBroadcast) Part() int     { return 0 }
func (rb *remoteBroadcast) Get(key any) (any, bool, error) {
	return rb.table.Get(key)
}
func (rb *remoteBroadcast) Put(key, value any) error { return rb.table.Put(key, value) }
func (rb *remoteBroadcast) Delete(key any) error     { return rb.table.Delete(key) }
func (rb *remoteBroadcast) Len() (int, error)        { return rb.table.Size() }
func (rb *remoteBroadcast) Enumerate(fn kvstore.PairFunc) error {
	return kvstore.EnumerateAll(rb.table, fn)
}
func (rb *remoteBroadcast) EnumerateOrdered(fn kvstore.PairFunc) error {
	return kvstore.EnumerateAll(rb.table, fn)
}

// mergePlainAggs merges per-worker partial aggregations client-side.
func (run *jobRun) mergePlainAggs(parts []map[string]any) map[string]any {
	merged := make(map[string]any, len(run.job.Aggregators))
	for name, agg := range run.job.Aggregators {
		cur := agg.Zero()
		saw := false
		for _, m := range parts {
			if m == nil {
				continue
			}
			if v, ok := m[name]; ok {
				cur = agg.Combine(cur, v)
				saw = true
			}
		}
		if saw {
			merged[name] = cur
		}
	}
	return merged
}

// mergeAggregations merges the step's partial aggregations: client-side for
// a modest number of aggregators, through the auxiliary tables and another
// round of enumeration for a large number (§IV-A).
func (run *jobRun) mergeAggregations(step int, results []*partStepResult) (map[string]any, error) {
	if run.aggPartials == nil {
		maps := make([]map[string]any, 0, len(results))
		for _, r := range results {
			if r != nil {
				maps = append(maps, r.aggs)
			}
		}
		return run.mergePlainAggs(maps), nil
	}
	// Table path: combine partials via a round of part enumeration.
	res, err := run.aggPartials.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View(run.aggPartials.Name())
			if err != nil {
				return nil, err
			}
			local := make(map[string]any)
			err = view.Enumerate(func(k, v any) (bool, error) {
				ak, ok := k.(aggPartialKey)
				if !ok || ak.Step != step {
					return false, nil
				}
				partial := v.(map[string]any)
				for name, pv := range partial {
					agg, ok := run.job.Aggregators[name]
					if !ok {
						continue
					}
					if cur, ok := local[name]; ok {
						local[name] = agg.Combine(cur, pv)
					} else {
						local[name] = pv
					}
				}
				return false, view.Delete(k)
			})
			return local, err
		},
		CombineFn: func(a, b any) (any, error) {
			am := a.(map[string]any)
			for name, bv := range b.(map[string]any) {
				agg, ok := run.job.Aggregators[name]
				if !ok {
					continue
				}
				if av, ok := am[name]; ok {
					am[name] = agg.Combine(av, bv)
				} else {
					am[name] = bv
				}
			}
			return am, nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("ebsp: merge aggregations: %w", err)
	}
	return res.(map[string]any), nil
}

// readAggPrev gives an agent the previous step's aggregation results: from
// memory on the small path, from the ubiquitous results table on the large
// path (redistribution, §IV-A).
func (run *jobRun) readAggPrev(sv kvstore.ShardView) (map[string]any, error) {
	if run.aggResults == nil {
		return run.aggPrev, nil
	}
	view, err := sv.View(run.aggResults.Name())
	if err != nil {
		return nil, err
	}
	out := make(map[string]any)
	err = view.Enumerate(func(k, v any) (bool, error) {
		out[k.(string)] = v
		return false, nil
	})
	return out, err
}

package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
)

// The wire format is a compact self-describing tag encoding: every value
// starts with one tag byte identifying its concrete type, followed by a
// type-specific body. Integers travel as varints (zigzag for signed),
// floats as big-endian IEEE-754 bits, strings and slices with a uvarint
// length prefix. The types that dominate Ripple traffic have dedicated
// tags; everything else falls back to a length-prefixed gob stream
// (tagGob), which is why Register is still required for arbitrary user
// types. Registered extension codecs (RegisterFast) occupy the tag space
// from tagExtBase up.
//
// Tag values are pinned by TestGoldenWireFormat; changing them breaks
// decode of any bytes produced by an earlier build (diskstore logs).
const (
	tagNil      = 0x00
	tagFalse    = 0x01
	tagTrue     = 0x02
	tagInt      = 0x03 // zigzag varint
	tagInt8     = 0x04
	tagInt16    = 0x05
	tagInt32    = 0x06
	tagInt64    = 0x07
	tagUint     = 0x08 // uvarint
	tagUint8    = 0x09
	tagUint16   = 0x0A
	tagUint32   = 0x0B
	tagUint64   = 0x0C
	tagFloat32  = 0x0D // 4-byte big-endian bits
	tagFloat64  = 0x0E // 8-byte big-endian bits
	tagString   = 0x0F // uvarint length + bytes
	tagBytes    = 0x10 // []byte: uvarint length + bytes
	tagIntSlice = 0x11 // uvarint length + zigzag varints
	tagF64Slice = 0x12 // uvarint length + 8-byte big-endian bits each
	tagStrSlice = 0x13 // uvarint length + (uvarint length + bytes) each
	tagPair2    = 0x14 // [2]int: two zigzag varints
	tagPair3    = 0x15 // [3]int: three zigzag varints
	tagStrMap   = 0x16 // map[string]any: uvarint length + sorted (string, value) pairs
	tagAnySlice = 0x17 // []any: uvarint length + values
	tagI32Slice = 0x18 // []int32: uvarint length + zigzag varints

	tagRef     = 0x3E // side-car reference: uvarint index into the frame's refs
	tagGob     = 0x3F // uvarint length + gob stream of wrapper{V: v}
	tagExtBase = 0x40 // registered extension codecs, in registration order
)

// Decode errors. Malformed input yields an error, never a panic.
var (
	errTruncated = errors.New("codec: truncated input")
	errMalformed = errors.New("codec: malformed input")
)

// Encoder appends the wire encoding of values to an internal buffer.
// Extension codecs receive one to write their body with the primitive
// methods. Encoders are pooled; use Encode/RoundTrip/PreEncode rather than
// constructing one directly.
type Encoder struct {
	buf       []byte
	refs      []any // gob-fallback values deferred to a frame's side-car
	refFrames int   // >0 while a batch codec is staging a ref frame
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(n int64) { e.buf = binary.AppendVarint(e.buf, n) }

// Int appends an int as a zigzag varint.
func (e *Encoder) Int(n int) { e.Varint(int64(n)) }

// Float64 appends 8 big-endian bytes of the IEEE-754 bits.
func (e *Encoder) Float64(f float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a uvarint length prefix and the string bytes.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Any appends the full tagged encoding of v (the same bytes Encode
// produces), letting extension codecs nest arbitrary values.
func (e *Encoder) Any(v any) error { return e.encodeAny(v) }

// AnyRef is Any for values that may ride in a batch frame: inside a ref
// frame (opened by BeginRefFrame), a value without a fast path is recorded
// as a side-car reference (tagRef + index) instead of an inline gob frame,
// so every fallback value in one frame shares a single gob stream (one set
// of type descriptors per batch, not per value). Outside any frame it is
// identical to Any, so nested codecs can use it unconditionally.
func (e *Encoder) AnyRef(v any) error {
	if e.refFrames == 0 || hasFastPath(v) {
		return e.encodeAny(v)
	}
	e.Byte(tagRef)
	e.Uvarint(uint64(len(e.refs)))
	e.refs = append(e.refs, v)
	return nil
}

// BeginRefFrame arms AnyRef deferral on this (scratch) encoder. The batch
// codec must collect the deferred values with TakeRefs and write them via
// RefSidecar on the target encoder.
func (e *Encoder) BeginRefFrame() { e.refFrames++ }

// TakeRefs closes the frame opened by BeginRefFrame and returns the values
// deferred by AnyRef.
func (e *Encoder) TakeRefs() []any {
	refs := e.refs
	e.refs = nil
	e.refFrames--
	return refs
}

// RefSidecar writes a frame's side-car: nil when there are no deferred
// values, otherwise one gob stream carrying all of them.
func (e *Encoder) RefSidecar(refs []any) error {
	if len(refs) == 0 {
		e.Byte(tagNil)
		return nil
	}
	return e.encodeGob(refs)
}

// Bytes exposes the encoded frame so a scratch encoder's output can be
// spliced into another encoder. The slice aliases the pooled buffer; it
// must not be retained past ReleaseEncoder.
func (e *Encoder) Bytes() []byte { return e.buf }

// Append splices raw pre-encoded bytes into the frame.
func (e *Encoder) Append(b []byte) { e.buf = append(e.buf, b...) }

// AcquireEncoder hands out a pooled scratch encoder for codecs that stage a
// frame body before its side-car. Pair with ReleaseEncoder.
func AcquireEncoder() *Encoder { return getEncoder() }

// ReleaseEncoder returns a scratch encoder to the pool.
func ReleaseEncoder(e *Encoder) { putEncoder(e) }

// Decoder reads the wire encoding back. Extension codecs receive one to
// read their body; every method bounds-checks and returns an error on
// malformed input.
type Decoder struct {
	data []byte
	pos  int
	refs []any // current frame's side-car values, resolved by tagRef
}

// NewDecoder wraps data for decoding (used by tests and extension code that
// decodes raw frames; Decode is the usual entry point).
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// remaining reports how many bytes are left.
func (d *Decoder) remaining() int { return len(d.data) - d.pos }

// Byte reads one raw byte.
func (d *Decoder) Byte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errTruncated
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, errMalformed
	}
	d.pos += n
	return u, nil
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, errMalformed
	}
	d.pos += n
	return v, nil
}

// Int reads an int-sized zigzag varint.
func (d *Decoder) Int() (int, error) {
	v, err := d.Varint()
	return int(v), err
}

// Float64 reads 8 big-endian bytes of IEEE-754 bits.
func (d *Decoder) Float64() (float64, error) {
	if d.remaining() < 8 {
		return 0, errTruncated
	}
	bits := binary.BigEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return math.Float64frombits(bits), nil
}

// String reads a length-prefixed string. The result copies out of the
// input buffer, so decoded values never alias pooled encode buffers.
func (d *Decoder) String() (string, error) {
	n, err := d.sliceLen(1)
	if err != nil {
		return "", err
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

// Any reads one full tagged value.
func (d *Decoder) Any() (any, error) { return d.decodeAny() }

// RefSidecar reads a frame's side-car written by Encoder.RefSidecar.
func (d *Decoder) RefSidecar() ([]any, error) {
	v, err := d.decodeAny()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	refs, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("%w: side-car is %T", errMalformed, v)
	}
	return refs, nil
}

// PushRefs installs a frame's side-car for tagRef resolution and returns
// the previous one; restore it with PopRefs when the frame's body is done.
func (d *Decoder) PushRefs(refs []any) []any {
	old := d.refs
	d.refs = refs
	return old
}

// PopRefs restores the enclosing frame's side-car.
func (d *Decoder) PopRefs(old []any) { d.refs = old }

// sliceLen reads a uvarint element count and rejects counts that could not
// fit in the remaining input (each element takes at least elemSize bytes),
// so malformed input cannot force huge allocations.
func (d *Decoder) sliceLen(elemSize int) (int, error) {
	u, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	n := int(u)
	if n < 0 || n*elemSize > d.remaining() {
		return 0, errMalformed
	}
	return n, nil
}

// encoder pooling: buffers are reused across calls and returned to the pool
// unless they grew past maxPooledBuf, so steady-state encoding allocates
// nothing and no oversized buffer is retained.
const maxPooledBuf = 1 << 20

var encPool = sync.Pool{New: func() any { return &Encoder{buf: make([]byte, 0, 512)} }}

func getEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	return e
}

func putEncoder(e *Encoder) {
	e.refs = nil // never retain user values in the pool
	e.refFrames = 0
	if cap(e.buf) <= maxPooledBuf {
		encPool.Put(e)
	}
}

// gob scratch buffers for the fallback path (the gob stream needs a length
// prefix, so it is staged through a pooled buffer before being appended).
var gobBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// FastCodec is a hand-rolled wire codec for one concrete type, registered
// with RegisterFast. Encode writes the body (the tag byte is handled by the
// codec package); Decode reads it back and returns the reconstructed value.
// Copy, if non-nil, clones a value without serializing (used by DeepCopy);
// when nil, DeepCopy falls back to an encode/decode round trip.
type FastCodec struct {
	Encode func(e *Encoder, v any) error
	Decode func(d *Decoder) (any, error)
	Copy   func(v any) (any, error)
}

type extEntry struct {
	tag byte
	fc  FastCodec
}

type extState struct {
	byType map[reflect.Type]*extEntry
	byTag  []*extEntry // index = tag - tagExtBase
}

var (
	extMu     sync.Mutex
	extTables atomic.Pointer[extState]
)

// RegisterFast installs a fast-path codec for the concrete type of sample.
// Registration is typically done in init; re-registering a type or
// exhausting the extension tag space panics. The assigned tag follows
// registration order, so a fixed registration order yields a stable wire
// format.
func RegisterFast(sample any, fc FastCodec) {
	if fc.Encode == nil || fc.Decode == nil {
		panic("codec: RegisterFast requires Encode and Decode")
	}
	rt := reflect.TypeOf(sample)
	if rt == nil {
		panic("codec: RegisterFast(nil)")
	}
	extMu.Lock()
	defer extMu.Unlock()
	old := extTables.Load()
	next := &extState{byType: make(map[reflect.Type]*extEntry)}
	if old != nil {
		for t, ent := range old.byType {
			next.byType[t] = ent
		}
		next.byTag = append(next.byTag, old.byTag...)
	}
	if _, dup := next.byType[rt]; dup {
		panic(fmt.Sprintf("codec: RegisterFast: %v already registered", rt))
	}
	tag := tagExtBase + len(next.byTag)
	if tag > 0xFF {
		panic("codec: RegisterFast: extension tag space exhausted")
	}
	ent := &extEntry{tag: byte(tag), fc: fc}
	next.byType[rt] = ent
	next.byTag = append(next.byTag, ent)
	extTables.Store(next)
}

func lookupExt(rt reflect.Type) *extEntry {
	st := extTables.Load()
	if st == nil {
		return nil
	}
	return st.byType[rt]
}

// encodeAny dispatches on the concrete type of v.
func (e *Encoder) encodeAny(v any) error {
	switch x := v.(type) {
	case nil:
		e.Byte(tagNil)
	case bool:
		if x {
			e.Byte(tagTrue)
		} else {
			e.Byte(tagFalse)
		}
	case int:
		e.Byte(tagInt)
		e.Varint(int64(x))
	case int8:
		e.Byte(tagInt8)
		e.Varint(int64(x))
	case int16:
		e.Byte(tagInt16)
		e.Varint(int64(x))
	case int32:
		e.Byte(tagInt32)
		e.Varint(int64(x))
	case int64:
		e.Byte(tagInt64)
		e.Varint(x)
	case uint:
		e.Byte(tagUint)
		e.Uvarint(uint64(x))
	case uint8:
		e.Byte(tagUint8)
		e.Uvarint(uint64(x))
	case uint16:
		e.Byte(tagUint16)
		e.Uvarint(uint64(x))
	case uint32:
		e.Byte(tagUint32)
		e.Uvarint(uint64(x))
	case uint64:
		e.Byte(tagUint64)
		e.Uvarint(x)
	case float32:
		e.Byte(tagFloat32)
		e.buf = binary.BigEndian.AppendUint32(e.buf, math.Float32bits(x))
	case float64:
		e.Byte(tagFloat64)
		e.Float64(x)
	case string:
		e.Byte(tagString)
		e.String(x)
	case []byte:
		e.Byte(tagBytes)
		e.Uvarint(uint64(len(x)))
		e.buf = append(e.buf, x...)
	case []int:
		e.Byte(tagIntSlice)
		e.Uvarint(uint64(len(x)))
		for _, n := range x {
			e.Varint(int64(n))
		}
	case []int32:
		e.Byte(tagI32Slice)
		e.Uvarint(uint64(len(x)))
		for _, n := range x {
			e.Varint(int64(n))
		}
	case []float64:
		e.Byte(tagF64Slice)
		e.Uvarint(uint64(len(x)))
		for _, f := range x {
			e.Float64(f)
		}
	case []string:
		e.Byte(tagStrSlice)
		e.Uvarint(uint64(len(x)))
		for _, s := range x {
			e.String(s)
		}
	case [2]int:
		e.Byte(tagPair2)
		e.Varint(int64(x[0]))
		e.Varint(int64(x[1]))
	case [3]int:
		e.Byte(tagPair3)
		e.Varint(int64(x[0]))
		e.Varint(int64(x[1]))
		e.Varint(int64(x[2]))
	case map[string]any:
		// Sorted by key so the encoding (and anything hashed or compared
		// from it) is deterministic, unlike gob's random map order.
		e.Byte(tagStrMap)
		e.Uvarint(uint64(len(x)))
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.String(k)
			if err := e.encodeAny(x[k]); err != nil {
				return err
			}
		}
	case []any:
		e.Byte(tagAnySlice)
		e.Uvarint(uint64(len(x)))
		for _, item := range x {
			if err := e.encodeAny(item); err != nil {
				return err
			}
		}
	case Encoded:
		// Already a full tagged encoding: splice it in verbatim.
		e.buf = append(e.buf, x.data...)
	default:
		if ent := lookupExt(reflect.TypeOf(v)); ent != nil {
			e.Byte(ent.tag)
			return ent.fc.Encode(e, v)
		}
		return e.encodeGob(v)
	}
	return nil
}

// encodeGob appends the gob fallback frame: tagGob, uvarint length, gob
// stream of the interface wrapper.
func (e *Encoder) encodeGob(v any) error {
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer gobBufPool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(&wrapper{V: v}); err != nil {
		return fmt.Errorf("codec: encode %T: %w", v, err)
	}
	e.Byte(tagGob)
	e.Uvarint(uint64(buf.Len()))
	e.buf = append(e.buf, buf.Bytes()...)
	return nil
}

// decodeAny dispatches on the tag byte.
func (d *Decoder) decodeAny() (any, error) {
	tag, err := d.Byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt:
		v, err := d.Varint()
		return int(v), err
	case tagInt8:
		v, err := d.Varint()
		return int8(v), err
	case tagInt16:
		v, err := d.Varint()
		return int16(v), err
	case tagInt32:
		v, err := d.Varint()
		return int32(v), err
	case tagInt64:
		return d.Varint()
	case tagUint:
		v, err := d.Uvarint()
		return uint(v), err
	case tagUint8:
		v, err := d.Uvarint()
		return uint8(v), err
	case tagUint16:
		v, err := d.Uvarint()
		return uint16(v), err
	case tagUint32:
		v, err := d.Uvarint()
		return uint32(v), err
	case tagUint64:
		return d.Uvarint()
	case tagFloat32:
		if d.remaining() < 4 {
			return nil, errTruncated
		}
		bits := binary.BigEndian.Uint32(d.data[d.pos:])
		d.pos += 4
		return math.Float32frombits(bits), nil
	case tagFloat64:
		return d.Float64()
	case tagString:
		return d.String()
	case tagBytes:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		out := make([]byte, n)
		copy(out, d.data[d.pos:d.pos+n])
		d.pos += n
		return out, nil
	case tagIntSlice:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			v, err := d.Varint()
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	case tagI32Slice:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		out := make([]int32, n)
		for i := range out {
			v, err := d.Varint()
			if err != nil {
				return nil, err
			}
			out[i] = int32(v)
		}
		return out, nil
	case tagF64Slice:
		n, err := d.sliceLen(8)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			f, err := d.Float64()
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	case tagStrSlice:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			s, err := d.String()
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	case tagPair2:
		var p [2]int
		for i := range p {
			v, err := d.Varint()
			if err != nil {
				return nil, err
			}
			p[i] = int(v)
		}
		return p, nil
	case tagPair3:
		var p [3]int
		for i := range p {
			v, err := d.Varint()
			if err != nil {
				return nil, err
			}
			p[i] = int(v)
		}
		return p, nil
	case tagStrMap:
		n, err := d.sliceLen(2)
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			k, err := d.String()
			if err != nil {
				return nil, err
			}
			v, err := d.decodeAny()
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case tagAnySlice:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		out := make([]any, 0, n)
		for i := 0; i < n; i++ {
			v, err := d.decodeAny()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case tagRef:
		i, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if int(i) >= len(d.refs) {
			return nil, fmt.Errorf("%w: side-car ref %d outside frame (have %d)",
				errMalformed, i, len(d.refs))
		}
		return d.refs[int(i)], nil
	case tagGob:
		n, err := d.sliceLen(1)
		if err != nil {
			return nil, err
		}
		var w wrapper
		if err := gob.NewDecoder(bytes.NewReader(d.data[d.pos : d.pos+n])).Decode(&w); err != nil {
			return nil, fmt.Errorf("codec: decode: %w", err)
		}
		d.pos += n
		return w.V, nil
	default:
		if tag >= tagExtBase {
			if st := extTables.Load(); st != nil {
				if i := int(tag - tagExtBase); i < len(st.byTag) {
					return st.byTag[i].fc.Decode(d)
				}
			}
		}
		return nil, fmt.Errorf("%w: unknown tag 0x%02x", errMalformed, tag)
	}
}

// countingWriter counts gob output without retaining it; EncodedSize streams
// fallback values through one instead of buffering them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// uvarintLen is the encoded size of u.
func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

package profile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Record(StepProfile{Job: "j"})
	r.AddFault("j", 1, 0)
	r.AddRetry("j", 1, 0)
	r.ObserveKey("j", "k", 3)
	r.Reset()
	if r.Now() != 0 || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder should report zeros")
	}
	if r.Snapshot() != nil || r.HotKeys(5) != nil {
		t.Fatal("nil recorder should snapshot nil")
	}
	if f, rt := r.Unattributed(); f != 0 || rt != 0 {
		t.Fatal("nil recorder should have no attribution")
	}
	if rep := AnalyzeRecorder(r, 5); rep.Records != 0 {
		t.Fatal("analyzing a nil recorder should yield an empty report")
	}
}

func TestRingWrapAndSnapshotOrder(t *testing.T) {
	r := New(4)
	for i := 0; i < 7; i++ {
		r.Record(StepProfile{Job: "j", Step: i + 1, Part: 0})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
	snap := r.Snapshot()
	for i, p := range snap {
		if p.Step != i+4 {
			t.Fatalf("snapshot[%d].Step = %d, want %d (oldest first)", i, p.Step, i+4)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset should clear records and drop count")
	}
}

func TestAttributionFoldsIntoRecord(t *testing.T) {
	r := New(16)
	r.AddFault("j", 2, 1)
	r.AddRetry("j", 2, 1)
	r.AddRetry("j", 2, 1)
	r.AddRetry("j", 9, 0) // different step: must not leak into (2, 1)
	r.Record(StepProfile{Job: "j", Step: 2, Part: 1})
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 record, got %d", len(snap))
	}
	if snap[0].Faults != 1 || snap[0].Retries != 2 {
		t.Fatalf("attribution: faults=%d retries=%d, want 1/2", snap[0].Faults, snap[0].Retries)
	}
	// The mismatched attribution stays pending.
	if f, rt := r.Unattributed(); f != 0 || rt != 1 {
		t.Fatalf("Unattributed = %d/%d, want 0/1", f, rt)
	}
	// A second record for the same key must not double-count.
	r.Record(StepProfile{Job: "j", Step: 2, Part: 1})
	if snap = r.Snapshot(); snap[1].Faults != 0 || snap[1].Retries != 0 {
		t.Fatal("attribution must be consumed by the first matching record")
	}
}

func TestHotKeysSpaceSaving(t *testing.T) {
	r := New(8)
	r.hotCap = 3
	r.ObserveKey("j", "heavy", 100)
	r.ObserveKey("j", "mid", 10)
	r.ObserveKey("j", "light", 1)
	r.ObserveKey("j", "newcomer", 5) // evicts "light", inherits its count
	top := r.HotKeys(2)
	if len(top) != 2 || top[0].Key != "heavy" || top[0].Count != 100 {
		t.Fatalf("HotKeys top = %+v", top)
	}
	if top[1].Key != "mid" {
		t.Fatalf("HotKeys second = %+v", top[1])
	}
	all := r.HotKeys(0)
	if len(all) != 3 {
		t.Fatalf("summary should stay bounded at 3, got %d", len(all))
	}
	found := false
	for _, k := range all {
		if k.Key == "newcomer" {
			found = true
			if k.Count != 6 { // inherited 1 + 5
				t.Fatalf("newcomer count = %d, want 6 (inherits evictee's count)", k.Count)
			}
		}
		if k.Key == "light" {
			t.Fatal("light should have been evicted")
		}
	}
	if !found {
		t.Fatal("newcomer missing from summary")
	}
}

func skewedRecords() []StepProfile {
	var profs []StepProfile
	for step := 1; step <= 3; step++ {
		for part := 0; part < 4; part++ {
			p := StepProfile{Job: "pagerank", Step: step, Part: part, ComputeNS: 10_000}
			if part == 2 {
				p.ComputeNS = 40_000 // part 2 is the deliberate straggler
			} else {
				p.BarrierWaitNS = 30_000
			}
			profs = append(profs, p)
		}
	}
	return profs
}

func TestAnalyzeFindsStragglerAndSkew(t *testing.T) {
	rep := Analyze(skewedRecords(), nil, 5)
	if rep.Records != 12 || len(rep.Steps) != 3 {
		t.Fatalf("records=%d steps=%d, want 12/3", rep.Records, len(rep.Steps))
	}
	for _, s := range rep.Steps {
		if s.StragglerPart != 2 {
			t.Fatalf("step %d straggler = %d, want 2", s.Step, s.StragglerPart)
		}
		if s.SkewRatio != 4.0 {
			t.Fatalf("step %d skew = %v, want 4.0", s.Step, s.SkewRatio)
		}
		if s.CriticalPathShare != 0.75 {
			t.Fatalf("step %d critical-path share = %v, want 0.75", s.Step, s.CriticalPathShare)
		}
	}
	if rep.MaxSkewRatio != 4.0 || rep.MeanSkewRatio != 4.0 {
		t.Fatalf("max/mean skew = %v/%v, want 4.0/4.0", rep.MaxSkewRatio, rep.MeanSkewRatio)
	}
	top, ok := rep.TopStraggler()
	if !ok || top.Part != 2 || top.StepsSlowest != 3 {
		t.Fatalf("TopStraggler = %+v ok=%v, want part 2 slowest in 3 steps", top, ok)
	}
	if top.ExcessNS != 3*30_000 {
		t.Fatalf("straggler excess = %d, want 90000", top.ExcessNS)
	}
	if rep.BarrierWaitNS != 9*30_000 {
		t.Fatalf("barrier wait = %d, want 270000", rep.BarrierWaitNS)
	}
}

func TestAnalyzeNoSyncRecords(t *testing.T) {
	profs := []StepProfile{
		{Job: "j", Step: 0, Part: 0, ComputeNS: 5000},
		{Job: "j", Step: 0, Part: 1, ComputeNS: 7000},
	}
	rep := Analyze(profs, nil, 5)
	if rep.NoSyncParts != 2 {
		t.Fatalf("NoSyncParts = %d, want 2", rep.NoSyncParts)
	}
	if len(rep.Steps) != 0 {
		t.Fatal("no-sync records must not produce per-step skew rows")
	}
	if len(rep.Stragglers) == 0 {
		t.Fatal("no-sync parts should still appear in the part ranking")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	profs := skewedRecords()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, profs); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(profs) {
		t.Fatalf("round-trip: %d records, want %d", len(got), len(profs))
	}
	if got[5] != profs[5] {
		t.Fatalf("round-trip mismatch: %+v != %+v", got[5], profs[5])
	}
}

func TestChromeTraceRoundTripAndShape(t *testing.T) {
	profs := skewedRecords()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, profs); err != nil {
		t.Fatal(err)
	}
	// Must be valid trace-event JSON with non-empty traceEvents.
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var computes, waits, meta int
	for _, ev := range ct.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "compute" {
				computes++
			} else {
				waits++
			}
		case "M":
			meta++
		}
	}
	if computes != len(profs) {
		t.Fatalf("compute spans = %d, want %d", computes, len(profs))
	}
	if waits != 9 { // 3 steps x 3 waiting parts
		t.Fatalf("barrier_wait spans = %d, want 9", waits)
	}
	if meta != 1+4 { // one process, four threads
		t.Fatalf("metadata events = %d, want 5", meta)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(profs) || got[0] != profs[0] {
		t.Fatalf("chrome round-trip: %d records, want %d", len(got), len(profs))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "   \n", "not json", `{"foo": 1}`, `[]`, `[{"ph":"M"}]`} {
		if _, err := Parse([]byte(in)); err == nil {
			t.Fatalf("Parse(%q) should fail", in)
		}
	}
}

func TestWriteTextReport(t *testing.T) {
	r := New(64)
	for _, p := range skewedRecords() {
		r.Record(p)
	}
	r.ObserveKey("pagerank", "hub-node", 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, AnalyzeRecorder(r, 5)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"12 records", "4.00x", "hub-node", "STRAGGLER"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
	if err := WriteText(&buf, nil); err != nil {
		t.Fatal("nil report should be a no-op")
	}
}

func TestProfilezHandler(t *testing.T) {
	r := New(64)
	for _, p := range skewedRecords() {
		r.Record(p)
	}
	r.AddFault("j", -1, -1)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "?recent=2&topk=3")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body profilezResponse
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Records != 12 || len(body.Recent) != 2 {
		t.Fatalf("records=%d recent=%d, want 12/2", body.Records, len(body.Recent))
	}
	if body.Skew == nil || body.Skew.MaxSkewRatio != 4.0 {
		t.Fatalf("skew summary missing or wrong: %+v", body.Skew)
	}
	if body.UnattributedFaults != 1 {
		t.Fatalf("unattributed faults = %d, want 1", body.UnattributedFaults)
	}
}

// TestConcurrentHammer drives the recorder from parallel part workers the way
// the engine does; run with -race.
func TestConcurrentHammer(t *testing.T) {
	r := New(256)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.AddFault("j", i%7, part)
				r.AddRetry("j", i%7, part)
				r.Record(StepProfile{Job: "j", Step: i%7 + 1, Part: part, StartNS: r.Now(), ComputeNS: int64(i)})
				r.ObserveKey("j", fmt.Sprintf("k%d", i%100), 1)
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.HotKeys(5)
					_ = r.Len()
					_, _ = r.Unattributed()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 256 {
		t.Fatalf("Len = %d, want full ring 256", r.Len())
	}
	total := int(r.Dropped()) + r.Len()
	if total != workers*perWorker {
		t.Fatalf("dropped+retained = %d, want %d", total, workers*perWorker)
	}
	rep := AnalyzeRecorder(r, 10)
	if rep.Records != 256 {
		t.Fatalf("analyzed %d records, want 256", rep.Records)
	}
}

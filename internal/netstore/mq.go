package netstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/mq"
)

// Queuing returns the networked mq SPI: queue sets live on the part-servers
// (queue q collocated with part q's primary), puts cross the wire, and
// readers long-poll.
//
// Delivery is at-most-once across failures: messages queued on a server
// that dies are lost, and a put retried after a lost response can deliver
// twice (the engine's sender+sequence duplicate shedding drops the replay).
// Per-(sender,queue) FIFO holds because each put is a synchronous RPC — a
// sender goroutine has at most one put in flight.
func (c *Client) Queuing() mq.Queuing { return &netQueuing{c: c} }

type netQueuing struct {
	c *Client
}

var _ mq.Queuing = (*netQueuing)(nil)

// CreateQueueSet implements mq.Queuing: the set is created on every live
// server so queue q is servable wherever part q's primary lands.
func (q *netQueuing) CreateQueueSet(name string, like kvstore.Table) (mq.Set, error) {
	queues := like.Parts()
	if err := q.c.broadcast(frame{Op: opMQCreate, Name: name, Part: queues}); err != nil {
		return nil, err
	}
	q.c.mu.Lock()
	q.c.qsets[name] = queues
	q.c.mu.Unlock()
	return &netSet{c: q.c, name: name, queues: queues}, nil
}

// DeleteQueueSet implements mq.Queuing.
func (q *netQueuing) DeleteQueueSet(name string) error {
	q.c.mu.Lock()
	delete(q.c.qsets, name)
	q.c.mu.Unlock()
	return q.c.broadcast(frame{Op: opMQDelete, Name: name})
}

// netSet is the client handle to a remote queue set.
type netSet struct {
	c      *Client
	name   string
	queues int
	closed atomic.Bool
}

var _ mq.Set = (*netSet)(nil)

// Name implements mq.Set.
func (s *netSet) Name() string { return s.name }

// Queues implements mq.Set.
func (s *netSet) Queues() int { return s.queues }

// Put implements mq.Set: the message routes to queue q's current primary.
// Messages are not replicated — see Queuing's delivery contract.
func (s *netSet) Put(q int, msg any) error {
	if s.closed.Load() {
		return fmt.Errorf("%w: %q", mq.ErrClosed, s.name)
	}
	if q < 0 || q >= s.queues {
		return fmt.Errorf("%w: %d of %d", mq.ErrNoQueue, q, s.queues)
	}
	vb, err := encVal(msg)
	if err != nil {
		return err
	}
	s.c.met.AddMessagesSent(1)
	s.c.met.AddMarshalledBytes(int64(len(vb)))
	_, err = s.c.callOp(s.c.replicaSetFor(q, false),
		frame{Op: opMQPut, Name: s.name, Part: q, Val: vb}, false)
	return err
}

// PutLocal implements mq.Set; over a network transport nothing is local, so
// it is Put.
func (s *netSet) PutLocal(q int, msg any) error { return s.Put(q, msg) }

// Run implements mq.Set: one worker per queue, each long-polling its queue's
// primary, blocking until all workers return.
func (s *netSet) Run(w mq.Worker) error {
	var wg sync.WaitGroup
	errs := make([]error, s.queues)
	for i := 0; i < s.queues; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w(&netReader{set: s, queue: i})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReaderFor implements mq.Set.
func (s *netSet) ReaderFor(q int) (mq.Reader, error) {
	if q < 0 || q >= s.queues {
		return nil, fmt.Errorf("%w: %d of %d", mq.ErrNoQueue, q, s.queues)
	}
	return &netReader{set: s, queue: q}, nil
}

// Close implements mq.Set.
func (s *netSet) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.c.mu.Lock()
	delete(s.c.qsets, s.name)
	s.c.mu.Unlock()
	return s.c.broadcast(frame{Op: opMQClose, Name: s.name})
}

// netReader long-polls one queue.
type netReader struct {
	set   *netSet
	queue int
}

var _ mq.Reader = (*netReader)(nil)

// Queue implements mq.Reader.
func (r *netReader) Queue() int { return r.queue }

// Read implements mq.Reader: the timeout rides in the request and the
// server holds it, so an idle queue costs one RPC per timeout window, not a
// poll storm. The RPC deadline is the poll window plus the normal request
// timeout.
func (r *netReader) Read(timeout time.Duration) (any, bool, error) {
	if timeout < 0 {
		timeout = 0
	}
	resp, err := r.set.c.callOpT(r.set.c.replicaSetFor(r.queue, false),
		frame{Op: opMQRead, Name: r.set.name, Part: r.queue, Aux: timeout.Nanoseconds()},
		false, timeout+r.set.c.reqTimeout)
	if err != nil {
		return nil, false, err
	}
	if !resp.Flag {
		return nil, false, nil
	}
	v, err := decVal(resp.Val)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// TryRead implements mq.Reader.
func (r *netReader) TryRead() (any, bool, error) { return r.Read(0) }

// Len implements mq.Reader. Errors surface as an empty queue — the SPI's
// Len is advisory (depth gauges), not load-bearing.
func (r *netReader) Len() int {
	resp, err := r.set.c.callOp(r.set.c.replicaSetFor(r.queue, false),
		frame{Op: opMQLen, Name: r.set.name, Part: r.queue}, false)
	if err != nil {
		return 0
	}
	return int(resp.Aux)
}

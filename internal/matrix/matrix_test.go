package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulSmall(t *testing.T) {
	a := Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := Dense{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(rng, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualWithin(a, 1e-12) {
		t.Error("A × I != A")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("mismatched multiply accepted")
	}
}

func TestAddInPlace(t *testing.T) {
	a := Dense{Rows: 1, Cols: 3, Data: []float64{1, 2, 3}}
	b := Dense{Rows: 1, Cols: 3, Data: []float64{10, 20, 30}}
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{11, 22, 33} {
		if a.Data[i] != want {
			t.Errorf("a[%d] = %v", i, a.Data[i])
		}
	}
	if err := a.AddInPlace(New(2, 2)); err == nil {
		t.Error("mismatched add accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Dense{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone shares memory")
	}
}

func TestPartitionAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][4]int{{6, 6, 3, 3}, {7, 5, 3, 2}, {10, 10, 1, 1}, {9, 4, 2, 4}} {
		m := Random(rng, dims[0], dims[1])
		g, err := Partition(m, dims[2], dims[3])
		if err != nil {
			t.Fatalf("Partition %v: %v", dims, err)
		}
		back := g.Assemble()
		if !back.EqualWithin(m, 0) {
			t.Errorf("round trip failed for %v", dims)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	m := New(4, 4)
	if _, err := Partition(m, 0, 2); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := Partition(m, 5, 2); err == nil {
		t.Error("grid larger than matrix accepted")
	}
}

// TestBlockMultiplyEquivalence is the core SUMMA invariant: multiplying via
// the block decomposition matches the direct product.
func TestBlockMultiplyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, grid = 12, 3
	a := Random(rng, n, n)
	b := Random(rng, n, n)
	direct, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := Partition(a, grid, grid)
	gb, _ := Partition(b, grid, grid)
	gc := &Grid{M: grid, N: grid, Blocks: make([][]Dense, grid)}
	for i := 0; i < grid; i++ {
		gc.Blocks[i] = make([]Dense, grid)
		for j := 0; j < grid; j++ {
			acc := New(ga.Blocks[i][0].Rows, gb.Blocks[0][j].Cols)
			for k := 0; k < grid; k++ {
				prod, err := ga.Blocks[i][k].Mul(gb.Blocks[k][j])
				if err != nil {
					t.Fatal(err)
				}
				if err := acc.AddInPlace(prod); err != nil {
					t.Fatal(err)
				}
			}
			gc.Blocks[i][j] = acc
		}
	}
	if !gc.Assemble().EqualWithin(direct, 1e-9) {
		t.Error("block product != direct product")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Random(r, 4, 4)
		b := Random(r, 4, 4)
		c := Random(r, 4, 4)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.EqualWithin(abc2, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

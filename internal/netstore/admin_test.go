package netstore

import (
	"net"
	"strings"
	"testing"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/trace"
)

// tracedFleet is fleet with a distinct tracer and collector per server, the
// way separate part-server processes run — so the admin ops must genuinely
// move telemetry over the wire.
func tracedFleet(t *testing.T, n int) (addrs []string, servers []*Server, tracers []*trace.Tracer) {
	t.Helper()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		tr := trace.New(1024)
		srv := NewServer(WithServerMetrics(&metrics.Collector{}), WithServerTracer(tr))
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = srv.Close() })
		addrs = append(addrs, ln.Addr().String())
		servers = append(servers, srv)
		tracers = append(tracers, tr)
	}
	return addrs, servers, tracers
}

func TestAdminStatsAndHealth(t *testing.T) {
	addrs, servers, _ := tracedFleet(t, 2)
	c := dialFleet(t, addrs, WithReplicas(2))

	tbl, err := c.CreateTable("t", kvstore.WithParts(4))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := tbl.Put(string(rune('a'+i)), i); err != nil {
			t.Fatalf("put: %v", err)
		}
	}

	for s := 0; s < 2; s++ {
		st, err := c.ServerStats(s)
		if err != nil {
			t.Fatalf("stats %d: %v", s, err)
		}
		if st.BootID != servers[s].BootID() {
			t.Errorf("server %d: boot id %d, want %d", s, st.BootID, servers[s].BootID())
		}
		if st.Counters.RPCCalls == 0 {
			t.Errorf("server %d: zero rpc calls after a workload", s)
		}
		if len(st.Endpoints) == 0 {
			t.Errorf("server %d: no endpoint histograms", s)
		}
		if st.WireInBytes <= 0 || st.WireOutBytes <= 0 {
			t.Errorf("server %d: wire bytes in=%d out=%d, want both > 0", s, st.WireInBytes, st.WireOutBytes)
		}
		if st.UptimeNS <= 0 || st.MonoNowNS <= 0 {
			t.Errorf("server %d: uptime %d, mono now %d", s, st.UptimeNS, st.MonoNowNS)
		}

		h, err := c.ServerHealth(s)
		if err != nil {
			t.Fatalf("health %d: %v", s, err)
		}
		if h.BootID != st.BootID {
			t.Errorf("server %d: health boot id %d != stats %d", s, h.BootID, st.BootID)
		}
		found := false
		for _, name := range h.Tables {
			if name == "t" {
				found = true
			}
		}
		if !found {
			t.Errorf("server %d: table %q missing from health tables %v", s, "t", h.Tables)
		}
		if h.Conns < 1 {
			t.Errorf("server %d: %d conns, want >= 1", s, h.Conns)
		}
	}
}

func TestAdminTraceDumpCursor(t *testing.T) {
	addrs, _, _ := tracedFleet(t, 2)
	tr := trace.New(1024)
	c := dialFleet(t, addrs, WithReplicas(2), WithTracer(tr))
	c.BindTrace(7) // traced frames: the server records rpc_server spans

	tbl, err := c.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tbl.Put("k1", 1); err != nil {
		t.Fatalf("put: %v", err)
	}

	d1, err := c.TraceDump(0, 0)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(d1.Spans) == 0 {
		t.Fatal("first dump empty after traced ops")
	}
	var matched int
	for _, s := range d1.Spans {
		if s.Kind != trace.KindRPCServer {
			t.Errorf("server dump has %v span", s.Kind)
		}
		if s.Parent != 0 {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no server span carries the client's span ID as parent")
	}
	if d1.Cursor != d1.Spans[len(d1.Spans)-1].Seq {
		t.Errorf("cursor %d, want last seq %d", d1.Cursor, d1.Spans[len(d1.Spans)-1].Seq)
	}

	// The cursor sees each span exactly once.
	d2, err := c.TraceDump(0, d1.Cursor)
	if err != nil {
		t.Fatalf("dump 2: %v", err)
	}
	for _, s := range d2.Spans {
		if s.Seq <= d1.Cursor {
			t.Errorf("span seq %d re-delivered past cursor %d", s.Seq, d1.Cursor)
		}
	}
	cursor := d2.Cursor

	if err := tbl.Put("k2", 2); err != nil {
		t.Fatalf("put: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		d3, err := c.TraceDump(0, cursor)
		if err != nil {
			t.Fatalf("dump 3: %v", err)
		}
		if len(d3.Spans) > 0 {
			for _, s := range d3.Spans {
				if s.Seq <= cursor {
					t.Errorf("span seq %d re-delivered past cursor %d", s.Seq, cursor)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			// The put may have landed on server 1; either way the cursor
			// contract held, so an empty tail is acceptable only if server 1
			// saw the span instead.
			if d, err := c.TraceDump(1, 0); err != nil || len(d.Spans) == 0 {
				t.Fatalf("no new span on either server after put (err=%v)", err)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClockOffsetsFromHeartbeats(t *testing.T) {
	addrs, _, _ := tracedFleet(t, 2)
	c := dialFleet(t, addrs, WithReplicas(2), WithHeartbeat(10*time.Millisecond, 3))

	deadline := time.Now().Add(3 * time.Second)
	for {
		offs := c.ClockOffsets()
		ready := true
		for _, o := range offs {
			if o.Samples == 0 {
				ready = false
			}
		}
		if ready {
			for i, o := range offs {
				if o.RTTNS <= 0 {
					t.Errorf("server %d: best rtt %d, want > 0", i, o.RTTNS)
				}
				if o.ErrorNS < o.RTTNS/2 {
					t.Errorf("server %d: error %d below the rtt/2 floor %d", i, o.ErrorNS, o.RTTNS/2)
				}
				// Loopback clocks agree to well under a second.
				if o.OffsetNS > int64(time.Second) || o.OffsetNS < -int64(time.Second) {
					t.Errorf("server %d: absurd offset %v", i, time.Duration(o.OffsetNS))
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no clock samples after heartbeats: %+v", offs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	sts := c.ServerStatuses()
	if len(sts) != 2 {
		t.Fatalf("got %d statuses", len(sts))
	}
	for _, st := range sts {
		if !st.Up || st.Addr == "" || st.Clock.Samples == 0 {
			t.Errorf("status %+v: want up, addressed, clocked", st)
		}
	}
}

func TestAdminClient(t *testing.T) {
	addrs, servers, _ := tracedFleet(t, 2)
	// Prime some load through a data client so stats are non-trivial.
	c := dialFleet(t, addrs, WithReplicas(2))
	tbl, err := c.CreateTable("t", kvstore.WithParts(2))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := tbl.Put("k", 1); err != nil {
		t.Fatalf("put: %v", err)
	}

	ac := DialAdmin(addrs, 0)
	defer ac.Close()
	if ac.Servers() != 2 || len(ac.Addrs()) != 2 {
		t.Fatalf("admin fleet size: %d servers, %d addrs", ac.Servers(), len(ac.Addrs()))
	}
	for s := 0; s < 2; s++ {
		bootID, rtt, monoNow, err := ac.Ping(s)
		if err != nil {
			t.Fatalf("ping %d: %v", s, err)
		}
		if bootID != servers[s].BootID() || rtt <= 0 || monoNow <= 0 {
			t.Errorf("ping %d = boot %d rtt %v mono %d", s, bootID, rtt, monoNow)
		}
		if _, err := ac.Stats(s); err != nil {
			t.Errorf("stats %d: %v", s, err)
		}
		if _, err := ac.Health(s); err != nil {
			t.Errorf("health %d: %v", s, err)
		}
		if _, err := ac.TraceDump(s, 0); err != nil {
			t.Errorf("trace dump %d: %v", s, err)
		}
	}
	if _, err := ac.call(5, frame{Op: opPing}); err == nil || !strings.Contains(err.Error(), "no server") {
		t.Errorf("out-of-range server: %v", err)
	}

	// A dead server degrades to per-call errors, not client failure.
	_ = servers[1].Close()
	if _, err := ac.Stats(1); err == nil {
		t.Error("stats from a closed server succeeded")
	}
	if _, _, _, err := ac.Ping(0); err != nil {
		t.Errorf("surviving server unreachable: %v", err)
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindJobStart; k <= KindDeliver; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Errorf("kind %d round-tripped to %d", k, back)
		}
	}
	// The numeric fallback form and bare numbers both parse.
	var k Kind
	if err := json.Unmarshal([]byte(`"kind(77)"`), &k); err != nil || k != Kind(77) {
		t.Errorf("kind(77) parsed to %d, err=%v", k, err)
	}
	if err := json.Unmarshal([]byte(`42`), &k); err != nil || k != Kind(42) {
		t.Errorf("bare 42 parsed to %d, err=%v", k, err)
	}
	if err := json.Unmarshal([]byte(`"no_such_kind"`), &k); err == nil {
		t.Error("unknown kind name did not error")
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := New(8)
	tr.RecordSpan(Span{
		Kind: KindDeliver, Job: "j", Step: 2, Part: 1, N: 34,
		Dur: time.Millisecond, Trace: 0xabc, Span: 0x123, Parent: 0x456,
		Attrs: map[string]string{"path": "sync"},
	})
	tr.Record(KindBarrier, "j", 2, -1, 0, time.Microsecond)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestOTLPRoundTrip(t *testing.T) {
	tr := New(16)
	trace := TraceID("j", 1, 42)
	root := SpanID(trace, -1, -1)
	load := SpanID(trace, 0, -1)
	tr.RecordSpan(Span{Kind: KindJobStart, Job: "j", Part: -1, N: 4, Trace: trace, Span: root})
	tr.RecordSpan(Span{Kind: KindLoad, Job: "j", Part: -1, N: 9, Dur: time.Millisecond, Trace: trace, Span: load, Parent: root})
	comp := SpanID(trace, 1, 0)
	tr.RecordSpan(Span{Kind: KindPartCompute, Job: "j", Step: 1, Part: 0, N: 3, Trace: trace, Span: comp, Parent: SpanID(trace, 1, -1)})
	tr.RecordSpan(Span{Kind: KindDeliver, Job: "j", Step: 1, Part: 0, N: 9, Trace: trace, Span: EdgeID(load, comp), Parent: load})
	// Same addressable ID twice (job_start/job_end share the root).
	tr.RecordSpan(Span{Kind: KindJobEnd, Job: "j", Part: -1, N: 1, Trace: trace, Span: root,
		Attrs: map[string]string{"sync": "true"}})

	var buf bytes.Buffer
	if err := tr.WriteOTLP(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `"resourceSpans"`) || !strings.Contains(text, `"ripple/internal/trace"`) {
		t.Fatalf("not an OTLP document: %s", text[:200])
	}

	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	// Export uniquifies duplicate span IDs but preserves the engine ID via
	// an attribute, so causal identity survives the round-trip.
	for i := range want {
		w, g := want[i], got[i]
		if g.Kind != w.Kind || g.Job != w.Job || g.Step != w.Step || g.Part != w.Part ||
			g.N != w.N || g.Trace != w.Trace || g.Span != w.Span || g.Parent != w.Parent ||
			g.Seq != w.Seq {
			t.Errorf("span %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
	if got[4].Attrs["sync"] != "true" {
		t.Errorf("string attr lost: %+v", got[4].Attrs)
	}

	// OTLP documents never declare the same spanId twice.
	var doc otlpExport
	if err := json.Unmarshal([]byte(text), &doc); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range doc.ResourceSpans[0].ScopeSpans[0].Spans {
		if seen[s.SpanID] {
			t.Errorf("duplicate spanId %s in export", s.SpanID)
		}
		seen[s.SpanID] = true
	}
}

func TestIDDerivationDeterministic(t *testing.T) {
	a := TraceID("pagerank", 3, 42)
	if a != TraceID("pagerank", 3, 42) {
		t.Error("TraceID not deterministic")
	}
	distinct := map[uint64]bool{a: true}
	for _, id := range []uint64{
		TraceID("pagerank", 4, 42), TraceID("pagerank", 3, 43), TraceID("wcc", 3, 42),
	} {
		if id == 0 || distinct[id] {
			t.Errorf("TraceID collision or zero: %x", id)
		}
		distinct[id] = true
	}
	s1, s2 := SpanID(a, 1, 0), SpanID(a, 0, 1)
	if s1 == s2 || s1 == 0 || s2 == 0 {
		t.Errorf("SpanID degenerate: %x %x", s1, s2)
	}
	if SpanID(a, -1, -1) == SpanID(a, 0, -1) {
		t.Error("root and load span IDs collided")
	}
	if EdgeID(s1, s2) == EdgeID(s2, s1) {
		t.Error("EdgeID is symmetric; direction must matter")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	ids := make([]uint64, 500)
	for i := range ids {
		ids[i] = TraceID("job", int64(i), 7)
	}
	pick := func(s *Sampler) []uint64 {
		var kept []uint64
		for _, id := range ids {
			if s.Sample(id) {
				kept = append(kept, id)
			}
		}
		return kept
	}
	a := pick(NewSampler(0.25, 99))
	b := pick(NewSampler(0.25, 99))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different sampled sets")
	}
	if len(a) == 0 || len(a) == len(ids) {
		t.Errorf("rate 0.25 kept %d/%d — not sampling", len(a), len(ids))
	}
	// Rough rate sanity: 25% ± 10 points over 500 trials.
	if frac := float64(len(a)) / float64(len(ids)); frac < 0.15 || frac > 0.35 {
		t.Errorf("keep fraction %.2f far from 0.25", frac)
	}
	c := pick(NewSampler(0.25, 100))
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical sampled sets")
	}
	if got := pick(NewSampler(0, 1)); len(got) != 0 {
		t.Errorf("rate 0 kept %d", len(got))
	}
	if got := pick(NewSampler(1, 1)); len(got) != len(ids) {
		t.Errorf("rate 1 kept %d/%d", len(got), len(ids))
	}
	var nilSampler *Sampler
	if !nilSampler.Sample(ids[0]) || nilSampler.Rate() != 1 {
		t.Error("nil sampler must keep everything")
	}
}

func TestConcurrentRecordResetSnapshot(t *testing.T) {
	tr := New(64)
	const workers, each = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				switch {
				case i%97 == 0 && w == 0:
					tr.Reset()
				case i%31 == 0:
					spans := tr.Snapshot()
					for j := 1; j < len(spans); j++ {
						if spans[j].Seq <= spans[j-1].Seq {
							t.Errorf("snapshot out of order at %d", j)
							return
						}
					}
				default:
					tr.RecordSpan(Span{Kind: KindPartCompute, Job: "j", Step: i, Part: w,
						Trace: uint64(w + 1), Span: uint64(i + 1)})
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() > 64 {
		t.Errorf("ring exceeded capacity: %d", tr.Len())
	}
}

func buildTestChainSpans() []Span {
	trace := TraceID("demo", 1, 0)
	root := SpanID(trace, -1, -1)
	load := SpanID(trace, 0, -1)
	step1 := SpanID(trace, 1, -1)
	c10 := SpanID(trace, 1, 0)
	c21 := SpanID(trace, 2, 1)
	return []Span{
		{Seq: 1, Kind: KindJobStart, Job: "demo", Part: -1, N: 2, Trace: trace, Span: root},
		{Seq: 2, Kind: KindLoad, Job: "demo", Part: -1, N: 5, Trace: trace, Span: load, Parent: root},
		{Seq: 3, Kind: KindStepStart, Job: "demo", Step: 1, Part: -1, Trace: trace, Span: step1, Parent: root},
		{Seq: 4, Kind: KindDeliver, Job: "demo", Step: 1, Part: 0, N: 5, Trace: trace,
			Span: EdgeID(load, c10), Parent: load},
		{Seq: 5, Kind: KindPartCompute, Job: "demo", Step: 1, Part: 0, N: 5, Trace: trace, Span: c10, Parent: step1},
		{Seq: 6, Kind: KindDeliver, Job: "demo", Step: 2, Part: 1, N: 3, Trace: trace,
			Span: EdgeID(c10, c21), Parent: c10},
		{Seq: 7, Kind: KindPartCompute, Job: "demo", Step: 2, Part: 1, N: 3, Trace: trace, Span: c21},
		{Seq: 8, Kind: KindJobEnd, Job: "demo", Part: -1, N: 2, Trace: trace, Span: root},
	}
}

func TestBuildChainCompleteAndCrossPart(t *testing.T) {
	spans := buildTestChainSpans()
	ids := Traces(spans)
	if len(ids) != 1 {
		t.Fatalf("traces = %v", ids)
	}
	c := BuildChain(spans, ids[0])
	if err := c.Complete(); err != nil {
		t.Fatalf("complete chain reported: %v", err)
	}
	if !c.CrossPart() {
		t.Error("chain crosses part 0 -> 1 but CrossPart is false")
	}
	if len(c.Edges) != 2 || c.Unresolved != 0 || c.MaxStep != 2 {
		t.Errorf("chain shape: edges=%d unresolved=%d maxStep=%d", len(c.Edges), c.Unresolved, c.MaxStep)
	}
	var sb strings.Builder
	if err := c.WriteLineage(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"from loader", "step 2 part 1", "chain: complete", "crosses partition boundary"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("lineage output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestBuildChainDetectsGaps(t *testing.T) {
	spans := buildTestChainSpans()
	// Drop the part-compute producer of the step-2 edge: the edge becomes
	// unresolved and the chain incomplete.
	broken := append([]Span(nil), spans[:4]...)
	broken = append(broken, spans[5:]...)
	c := BuildChain(broken, spans[0].Trace)
	if c.Unresolved != 1 {
		t.Errorf("unresolved = %d, want 1", c.Unresolved)
	}
	if err := c.Complete(); err == nil {
		t.Error("broken chain reported complete")
	}
	// A same-part-only chain must not claim a partition crossing.
	same := buildTestChainSpans()[:5]
	if BuildChain(same, spans[0].Trace).CrossPart() {
		t.Error("loader-only edges counted as a partition crossing")
	}
}

// Package httpx is the small HTTP serving helper shared by Ripple's
// daemons and tools (ripple-serve, ripple-part-server, ripple-bench).
//
// It exists to fix a lifecycle bug the bare
//
//	go func() { http.ListenAndServe(addr, mux) }()
//
// pattern has: the bind happens inside the goroutine, so a bad address or an
// occupied port is logged only after the process has already committed to
// serving traffic, and there is no way to drain in-flight requests on
// shutdown. Serve binds the listener synchronously — a bad address fails
// fast, before the caller starts real work — and Shutdown drains gracefully,
// ready to be wired into the caller's SIGINT/SIGTERM trap.
package httpx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// DefaultShutdownTimeout bounds Shutdown's graceful drain when the caller
// passes no deadline of its own.
const DefaultShutdownTimeout = 5 * time.Second

// Server is one bound-and-serving HTTP endpoint.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	done chan error
}

// Serve binds addr synchronously — a bad or occupied address is returned
// immediately, before anything serves — and then serves handler on a
// background goroutine. The caller owns shutdown: wire Shutdown (or Close)
// into its signal trap.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpx: listen %s: %w", addr, err)
	}
	s := &Server{
		srv:  &http.Server{Handler: handler},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr is the bound address — with ":0" it carries the kernel-assigned port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully drains in-flight requests. A nil ctx gets
// DefaultShutdownTimeout; on expiry remaining connections are closed hard.
// It returns the serve loop's terminal error (nil on a clean close).
func (s *Server) Shutdown(ctx context.Context) error {
	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), DefaultShutdownTimeout)
		defer cancel()
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		// Drain deadline hit: fall back to a hard close so Shutdown always
		// terminates the serve loop.
		_ = s.srv.Close()
	}
	return <-s.done
}

// Close shuts the server down immediately, without draining.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Done reports the serve loop's terminal error: it yields once, when the
// listener dies (nil after Shutdown/Close). Select on it next to a signal
// channel to notice a serve loop failing underneath a running daemon.
func (s *Server) Done() <-chan error { return s.done }

package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/trace"
)

// Server is one part-server process: it owns the shards of every table the
// fleet places on it, serves the mq queues collocated with those parts, and
// answers the framed-RPC protocol. Keys and values are opaque encoded bytes
// end to end — the server never needs the client's Go types, which is what
// lets one server binary serve any analytics job.
type Server struct {
	bootID int64
	start  time.Time
	met    *metrics.Collector
	tr     *trace.Tracer

	// Wire accounting for the telemetry ops: bytes read from and written to
	// all client connections, length prefixes included.
	wireIn  atomic.Int64
	wireOut atomic.Int64

	mu     sync.Mutex
	tables map[string]*srvTable
	order  []string
	qsys   *mq.System
	qsets  map[string]mq.Set
	closed bool

	lnMu  sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerMetrics attaches a metrics collector (per-endpoint service-time
// histograms and RPC counters, exposed on the server's own /metrics).
func WithServerMetrics(m *metrics.Collector) ServerOption {
	return func(s *Server) { s.met = m }
}

// WithServerTracer attaches a tracer; server-side RPC spans join the causal
// trace the client stamps on frames.
func WithServerTracer(t *trace.Tracer) ServerOption {
	return func(s *Server) { s.tr = t }
}

// NewServer creates an empty part-server. Its boot identity is minted from
// the wall clock, so a restarted process is distinguishable from a network
// blip even when it comes back fast.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		bootID: time.Now().UnixNano(),
		start:  time.Now(),
		tables: make(map[string]*srvTable),
		qsys:   mq.NewSystem(mq.WithoutMarshalling()),
		qsets:  make(map[string]mq.Set),
		conns:  make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// BootID is the server's boot identity, echoed in ping responses.
func (s *Server) BootID() int64 { return s.bootID }

// Serve accepts connections on ln until Close. It returns nil on a clean
// shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.ln != nil {
		s.lnMu.Unlock()
		return errors.New("netstore: server already serving")
	}
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.lnMu.Lock()
		if s.conns == nil {
			s.lnMu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every connection, and wakes blocked queue
// readers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sets := make([]mq.Set, 0, len(s.qsets))
	for _, set := range s.qsets {
		sets = append(sets, set)
	}
	s.mu.Unlock()
	for _, set := range sets {
		_ = set.Close()
	}
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.conns = nil
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn reads frames sequentially and handles each in its own goroutine
// — long-poll reads must not block unrelated requests on the same
// connection. Responses are serialized by a per-connection write mutex.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.lnMu.Lock()
		if s.conns != nil {
			delete(s.conns, conn)
		}
		s.lnMu.Unlock()
		conn.Close()
	}()
	var wmu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		req, n, err := readFrameN(conn)
		if err != nil {
			return
		}
		s.wireIn.Add(int64(n))
		reqWG.Add(1)
		go func(req frame) {
			defer reqWG.Done()
			start := time.Now()
			resp := s.handle(req)
			dur := time.Since(start)
			s.met.Endpoint(opName(req.Op)).ObserveDuration(dur)
			s.met.AddRPCCalls(1)
			if req.Trace != 0 && s.tr != nil {
				s.tr.RecordSpan(trace.Span{
					Kind: trace.KindRPCServer, Job: opName(req.Op), Part: req.Part,
					N: int64(req.ID), Dur: dur, Trace: req.Trace, Parent: req.Span,
				})
			}
			wmu.Lock()
			n, err := writeFrameN(conn, resp)
			wmu.Unlock()
			s.wireOut.Add(int64(n))
			if err != nil {
				conn.Close()
			}
		}(req)
	}
}

// handle executes one request and builds its response.
func (s *Server) handle(req frame) frame {
	resp, err := s.dispatch(req)
	if err != nil {
		return errFrame(req, err)
	}
	resp.ID = req.ID
	resp.Op = req.Op
	return resp
}

func (s *Server) dispatch(req frame) (frame, error) {
	switch req.Op {
	case opPing:
		// The response also carries the server's monotonic now (8 bytes BE,
		// same clock base as its trace spans) so clients can estimate this
		// server's clock offset from the RTT midpoint, NTP-style.
		var now [8]byte
		binary.BigEndian.PutUint64(now[:], uint64(s.monoNow()))
		return frame{Aux: s.bootID, Val: now[:]}, nil
	case opStats:
		return s.statsFrame()
	case opTraceDump:
		return s.traceDumpFrame(uint64(req.Aux))
	case opHealth:
		return s.healthFrame()
	case opCreateTable:
		return frame{}, s.createTable(req.Name, req.Part, req.Flag, req.Aux&1 != 0)
	case opDropTable:
		return frame{}, s.dropTable(req.Name)
	case opLookupTable:
		return s.lookupTable(req.Name), nil
	case opTables:
		return s.listTables(), nil
	case opMQCreate:
		return frame{}, s.mqCreate(req.Name, req.Part)
	case opMQDelete:
		return frame{}, s.qsys.DeleteQueueSet(req.Name)
	case opMQPut, opMQRead, opMQLen, opMQClose:
		return s.mqOp(req)
	}
	// Everything else targets one part of one table.
	t, err := s.tableOf(req.Name)
	if err != nil {
		return frame{}, err
	}
	if err := kvstore.CheckPart(req.Part, len(t.shards)); err != nil {
		return frame{}, err
	}
	sh := t.shards[req.Part]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch req.Op {
	case opGet:
		v, ok := sh.items[string(req.Key)]
		return frame{Flag: ok, Val: v}, nil
	case opPut:
		sh.items[string(req.Key)] = req.Val
		return frame{}, nil
	case opDelete:
		delete(sh.items, string(req.Key))
		return frame{}, nil
	case opLen:
		return frame{Aux: int64(len(sh.items))}, nil
	case opSnapshot:
		pairs := make([]wirePair, 0, len(sh.items))
		for k, v := range sh.items {
			pairs = append(pairs, wirePair{K: []byte(k), V: v})
		}
		return frame{Pairs: pairs}, nil
	case opClearPart:
		sh.items = make(map[string][]byte)
		return frame{}, nil
	case opPutBatch:
		for _, p := range req.Pairs {
			sh.items[string(p.K)] = p.V
		}
		return frame{}, nil
	}
	return frame{}, fmt.Errorf("netstore: unknown opcode %d", req.Op)
}

// srvTable is one table's server-side state: a mutex-guarded byte-keyed map
// per shard. The client computes placement, so the server just honors the
// part index on each request.
type srvTable struct {
	parts   int
	ubiq    bool
	ordered bool
	shards  []*srvShard
}

type srvShard struct {
	mu    sync.Mutex
	items map[string][]byte
}

func (s *Server) createTable(name string, parts int, ubiq, ordered bool) error {
	if parts <= 0 {
		return fmt.Errorf("netstore: table %q: bad part count %d", name, parts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kvstore.ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}
	t := &srvTable{parts: parts, ubiq: ubiq, ordered: ordered, shards: make([]*srvShard, parts)}
	for i := range t.shards {
		t.shards[i] = &srvShard{items: make(map[string][]byte)}
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return nil
}

func (s *Server) dropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

func (s *Server) lookupTable(name string) frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return frame{Flag: false}
	}
	var aux int64
	if t.ordered {
		aux |= 1
	}
	if t.ubiq {
		aux |= 2
	}
	return frame{Flag: true, Part: t.parts, Aux: aux}
}

func (s *Server) listTables() frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	pairs := make([]wirePair, 0, len(s.order))
	for _, n := range s.order {
		pairs = append(pairs, wirePair{K: []byte(n)})
	}
	return frame{Pairs: pairs}
}

func (s *Server) tableOf(name string) (*srvTable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	return t, nil
}

// partsStub satisfies the sliver of kvstore.Table that mq.System's
// CreateQueueSet reads (the part count used for queue placement).
type partsStub struct {
	kvstore.Table
	n int
}

func (p partsStub) Parts() int { return p.n }

func (s *Server) mqCreate(name string, queues int) error {
	if queues <= 0 {
		return fmt.Errorf("netstore: queue set %q: bad queue count %d", name, queues)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kvstore.ErrClosed
	}
	set, err := s.qsys.CreateQueueSet(name, partsStub{n: queues})
	if err != nil {
		return err
	}
	s.qsets[name] = set
	return nil
}

func (s *Server) mqOp(req frame) (frame, error) {
	s.mu.Lock()
	set, ok := s.qsets[req.Name]
	s.mu.Unlock()
	if !ok {
		return frame{}, fmt.Errorf("%w: queue set %q", mq.ErrNoQueue, req.Name)
	}
	switch req.Op {
	case opMQPut:
		// The payload stays opaque: the queue holds the client's encoded
		// bytes and hands them back to whichever reader polls them.
		return frame{}, set.Put(req.Part, req.Val)
	case opMQRead:
		r, err := set.ReaderFor(req.Part)
		if err != nil {
			return frame{}, err
		}
		msg, ok, err := r.Read(time.Duration(req.Aux))
		if err != nil {
			return frame{}, err
		}
		if !ok {
			return frame{Flag: false}, nil
		}
		b, _ := msg.([]byte)
		return frame{Flag: true, Val: b}, nil
	case opMQLen:
		r, err := set.ReaderFor(req.Part)
		if err != nil {
			return frame{}, err
		}
		return frame{Aux: int64(r.Len())}, nil
	case opMQClose:
		s.mu.Lock()
		delete(s.qsets, req.Name)
		s.mu.Unlock()
		return frame{}, s.qsys.DeleteQueueSet(req.Name)
	}
	return frame{}, fmt.Errorf("netstore: unknown mq opcode %d", req.Op)
}

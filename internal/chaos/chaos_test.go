package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/mq"
)

func TestParseRoundTrip(t *testing.T) {
	in := "seed=7,store.err=0.01,store.delay=1ms@0.05,agent.err=0.02," +
		"mq.err=0.01,mq.dup=0.05,mq.delay=2ms@0.1,kill=pages:3@40,kill=pages:1@10"
	sched, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{
		Seed:         7,
		StoreErrRate: 0.01, StoreDelay: time.Millisecond, StoreDelayRate: 0.05,
		AgentErrRate: 0.02,
		MQErrRate:    0.01, MQDupRate: 0.05, MQDelay: 2 * time.Millisecond, MQDelayRate: 0.1,
		Kills: []Kill{{Table: "pages", Part: 3, AfterDispatches: 40}, {Table: "pages", Part: 1, AfterDispatches: 10}},
	}
	if !reflect.DeepEqual(sched, want) {
		t.Fatalf("Parse = %+v, want %+v", sched, want)
	}
	// String renders kills sorted; reparsing it must yield the same plan.
	again, err := Parse(sched.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sched.String(), err)
	}
	if again.String() != sched.String() {
		t.Errorf("round trip: %q != %q", again.String(), sched.String())
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, s := range []string{
		"store.err",      // no value
		"bogus=1",        // unknown key
		"store.err=1.5",  // rate outside [0,1]
		"mq.delay=xyz",   // unparsable duration
		"mq.delay=-1ms",  // negative delay
		"kill=pages",     // missing part/dispatches
		"kill=pages:x@3", // bad part
		"kill=:0@3",      // empty table
		"mq.delay=1ms@2", // delay rate outside [0,1]
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestParseBareDelayMeansAlways(t *testing.T) {
	sched, err := Parse("seed=1,store.delay=3ms")
	if err != nil {
		t.Fatal(err)
	}
	if sched.StoreDelay != 3*time.Millisecond || sched.StoreDelayRate != 1 {
		t.Errorf("bare delay = %v@%v, want 3ms@1", sched.StoreDelay, sched.StoreDelayRate)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"__ebsp.pagerank.3.transport": "__ebsp.pagerank.#.transport",
		"pages":                       "pages",
		"__ebsp.summa.q17":            "__ebsp.summa.q17", // mixed segment kept
		"a.12.b.345":                  "a.#.b.#",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUniformDeterministicAndSpread(t *testing.T) {
	var sum float64
	const n = 4000
	for i := int64(0); i < n; i++ {
		u := uniform(42, "store.err", "tab", 1, i)
		if u != uniform(42, "store.err", "tab", 1, i) {
			t.Fatal("uniform is not a pure function")
		}
		if u < 0 || u >= 1 {
			t.Fatalf("uniform #%d = %v outside [0,1)", i, u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean of %d variates = %v, want ≈0.5", n, mean)
	}
	if uniform(1, "store.err", "tab", 0, 0) == uniform(2, "store.err", "tab", 0, 0) {
		t.Error("seeds 1 and 2 collide on the first variate")
	}
}

// driveOps performs a fixed workload against an injector and returns its
// fault records.
func driveOps(t *testing.T, seed int64) []Record {
	t.Helper()
	inj := NewInjector(Schedule{Seed: seed, StoreErrRate: 0.3, MQErrRate: 0.3, MQDupRate: 0.3})
	store := Wrap(memstore.New(memstore.WithParts(4)), inj)
	t.Cleanup(func() { _ = store.Close() })
	tab, err := store.CreateTable("det")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_ = tab.Put(i, i)
		_, _, _ = tab.Get(i)
		inj.PutFault("det.q", i%4)
	}
	return inj.Records()
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := driveOps(t, 7), driveOps(t, 7)
	if len(a) == 0 {
		t.Fatal("no faults injected at 30% rates over 150 ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	if c := driveOps(t, 8); reflect.DeepEqual(a, c) {
		t.Error("seeds 7 and 8 injected identical fault sets")
	}
}

func TestWrapCapabilityPassthrough(t *testing.T) {
	plain := Wrap(memstore.New(memstore.WithParts(2)), NewInjector(Schedule{}))
	t.Cleanup(func() { _ = plain.Close() })
	if _, ok := plain.(kvstore.Transactional); ok {
		t.Error("wrapped memstore claims Transactional")
	}
	if _, ok := plain.(kvstore.Replicated); ok {
		t.Error("wrapped memstore claims Replicated")
	}

	full := Wrap(gridstore.New(gridstore.WithParts(2), gridstore.WithReplicas(2)), NewInjector(Schedule{}))
	t.Cleanup(func() { _ = full.Close() })
	if _, ok := full.(kvstore.Transactional); !ok {
		t.Error("wrapped gridstore lost Transactional")
	}
	if _, ok := full.(kvstore.Replicated); !ok {
		t.Error("wrapped gridstore lost Replicated")
	}
	if _, ok := full.(kvstore.Healer); !ok {
		t.Error("wrapped gridstore lost Healer")
	}
	if _, ok := full.(kvstore.FailureSensor); !ok {
		t.Error("wrapped gridstore lost FailureSensor")
	}
}

func TestStoreFaultIsTransientAndEntryOnly(t *testing.T) {
	inj := NewInjector(Schedule{Seed: 1, StoreErrRate: 1})
	store := Wrap(memstore.New(memstore.WithParts(2)), inj)
	t.Cleanup(func() { _ = store.Close() })
	tab, err := store.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Put("k", "v"); !errors.Is(err, kvstore.ErrTransient) {
		t.Fatalf("Put err = %v, want ErrTransient", err)
	}
	// Rate 1 fails every op; the failed Put must have had no effect.
	inner, _ := store.(*Store)
	raw, _ := inner.inner.LookupTable("t")
	if n, _ := raw.Size(); n != 0 {
		t.Errorf("failed Put took effect: size %d", n)
	}
	recs := inj.Records()
	if len(recs) == 0 || recs[0].Kind != "store.err" {
		t.Errorf("records = %v", recs)
	}
}

func TestMQFaultShapes(t *testing.T) {
	inj := NewInjector(Schedule{Seed: 3, MQErrRate: 1})
	f := inj.PutFault("q", 0)
	if !errors.Is(f.Err, mq.ErrTransient) {
		t.Errorf("fault err = %v, want ErrTransient", f.Err)
	}
	inj = NewInjector(Schedule{Seed: 3, MQDupRate: 1, MQDelay: time.Millisecond, MQDelayRate: 1})
	f = inj.PutFault("q", 0)
	if f.Err != nil || f.Duplicates != 1 || f.Delay != time.Millisecond {
		t.Errorf("fault = %+v, want dup 1 delay 1ms", f)
	}
}

func TestScheduledKillFiresAndRearms(t *testing.T) {
	gs := gridstore.New(gridstore.WithParts(2), gridstore.WithReplicas(2))
	inj := NewInjector(Schedule{Seed: 1, Kills: []Kill{{Table: "late", Part: 0, AfterDispatches: 1}}})
	store := Wrap(gs, inj)
	t.Cleanup(func() { _ = store.Close() })
	if _, err := store.CreateTable("host"); err != nil {
		t.Fatal(err)
	}
	noop := func(sv kvstore.ShardView) (any, error) { return nil, nil }

	// Dispatches 1..3: the kill is due from dispatch 2 on, but its target
	// table does not exist yet — it must stay armed, not fire into the void.
	for i := 0; i < 3; i++ {
		if _, err := store.RunAgent("host", 0, noop); err != nil {
			t.Fatal(err)
		}
	}
	if got := gs.Failovers(); got != 0 {
		t.Fatalf("kill fired before target existed: %d failovers", got)
	}
	if _, err := store.CreateTable("late"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RunAgent("host", 0, noop); err != nil {
		t.Fatal(err)
	}
	if got := gs.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	// Fired once: further dispatches must not re-kill.
	if _, err := store.RunAgent("host", 0, noop); err != nil {
		t.Fatal(err)
	}
	if got := gs.Failovers(); got != 1 {
		t.Fatalf("kill fired twice: %d failovers", got)
	}
	recs := inj.Records()
	if len(recs) != 1 || recs[0].Kind != "kill" || recs[0].Name != "late" {
		t.Errorf("records = %v, want one kill on late", recs)
	}
}

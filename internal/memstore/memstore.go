// Package memstore implements the paper's "parallel debugging store" (§V-A):
// an in-process approximation of a distributed key/value store.
//
// The store is divided into a configurable number of partitions. Each
// partition is served by two goroutines: one handles short request-response
// table operations (get, put, delete), while the other handles — one at a
// time — long-running requests (enumerations and agent dispatches).
// Communication between emulated partitions involves marshalling and
// un-marshalling through the codec; local operations (an agent touching its
// own part) do not. This reproduces both the isolation and the relative cost
// structure of a real distributed store.
package memstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
)

// Option configures a Store.
type Option func(*Store)

// WithParts sets the default part count for new tables (default 6, matching
// the paper's evaluation configuration).
func WithParts(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.defaultParts = n
		}
	}
}

// WithMetrics attaches a metrics collector.
func WithMetrics(m *metrics.Collector) Option {
	return func(s *Store) { s.metrics = m }
}

// WithoutMarshalling disables cross-partition marshalling. This removes the
// emulated network cost (and the isolation it provides); it exists for
// ablation benchmarks only.
func WithoutMarshalling() Option {
	return func(s *Store) { s.marshal = false }
}

// WithLatency adds an emulated network latency to every operation that
// crosses a partition boundary. On a single-core host this is what makes
// concurrency effects (e.g. removing synchronization barriers) visible in
// wall-clock time, standing in for the paper's multi-container testbed.
func WithLatency(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.latency = d
		}
	}
}

// Store is the parallel debugging store.
type Store struct {
	defaultParts int
	marshal      bool
	latency      time.Duration
	metrics      *metrics.Collector

	mu     sync.Mutex
	closed bool
	tables map[string]*table
	order  []string
	groups map[string]*group // partition groups, by group id
	nextID int
}

var _ kvstore.Store = (*Store)(nil)

// group is a set of consistently partitioned tables served by shared
// partition goroutines.
type group struct {
	id     string
	parts  int
	hasher codec.Hasher
	shards []*shard
}

// shard is one partition of one group: its data (across all of the group's
// tables) and the two service goroutines.
type shard struct {
	part int

	mu   sync.Mutex
	data map[string]*partData // table name -> pairs

	ops  chan func() // short request-response operations
	long chan func() // long-running requests, served one at a time
	done chan struct{}
	wg   sync.WaitGroup
}

type partData struct {
	items   map[any]any
	ordered bool
}

// New creates a Store.
func New(opts ...Option) *Store {
	s := &Store{
		defaultParts: 6,
		marshal:      true,
		tables:       make(map[string]*table),
		groups:       make(map[string]*group),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements kvstore.Store.
func (s *Store) Name() string { return "memstore" }

// DefaultParts implements kvstore.Store.
func (s *Store) DefaultParts() int { return s.defaultParts }

// CreateTable implements kvstore.Store.
func (s *Store) CreateTable(name string, opts ...kvstore.TableOption) (kvstore.Table, error) {
	cfg := kvstore.ApplyOptions(s.defaultParts, opts)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kvstore.ErrClosed
	}
	if _, ok := s.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrTableExists, name)
	}

	var g *group
	if cfg.ConsistentWith != "" {
		base, ok := s.tables[cfg.ConsistentWith]
		if !ok {
			return nil, fmt.Errorf("%w: consistent-with %q", kvstore.ErrNoTable, cfg.ConsistentWith)
		}
		g = base.group
	} else {
		g = s.newGroup(cfg.Parts, cfg.Hasher)
	}

	t := &table{
		store:      s,
		name:       name,
		group:      g,
		ubiquitous: cfg.Ubiquitous,
		ordered:    cfg.Ordered,
	}
	if cfg.Ubiquitous {
		t.ubiq = &ubiqData{items: make(map[any]any)}
	} else {
		for _, sh := range g.shards {
			sh.mu.Lock()
			sh.data[name] = &partData{items: make(map[any]any), ordered: cfg.Ordered}
			sh.mu.Unlock()
		}
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return t, nil
}

func (s *Store) newGroup(parts int, h codec.Hasher) *group {
	s.nextID++
	g := &group{
		id:     fmt.Sprintf("g%d", s.nextID),
		parts:  parts,
		hasher: h,
	}
	g.shards = make([]*shard, parts)
	for p := 0; p < parts; p++ {
		sh := &shard{
			part: p,
			data: make(map[string]*partData),
			ops:  make(chan func()),
			long: make(chan func()),
			done: make(chan struct{}),
		}
		sh.wg.Add(2)
		go sh.serve(sh.ops)  // short request-response operations
		go sh.serve(sh.long) // long-running requests, one at a time
		g.shards[p] = sh
	}
	s.groups[g.id] = g
	return g
}

func (sh *shard) serve(ch chan func()) {
	defer sh.wg.Done()
	for {
		select {
		case fn := <-ch:
			fn()
		case <-sh.done:
			// Drain anything already queued so no caller blocks forever.
			for {
				select {
				case fn := <-ch:
					fn()
				default:
					return
				}
			}
		}
	}
}

// dispatch runs fn on one of the shard's service goroutines and waits for it.
func (sh *shard) dispatch(ch chan func(), fn func()) error {
	doneC := make(chan struct{})
	wrapped := func() {
		defer close(doneC)
		fn()
	}
	select {
	case ch <- wrapped:
	case <-sh.done:
		return kvstore.ErrClosed
	}
	<-doneC
	return nil
}

// LookupTable implements kvstore.Store.
func (s *Store) LookupTable(name string) (kvstore.Table, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, false
	}
	return t, true
}

// DropTable implements kvstore.Store.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", kvstore.ErrNoTable, name)
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if !t.ubiquitous {
		for _, sh := range t.group.shards {
			sh.mu.Lock()
			delete(sh.data, name)
			sh.mu.Unlock()
		}
	}
	return nil
}

// Tables implements kvstore.Store.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// RunAgent implements kvstore.Store: it executes the agent on the long-request
// goroutine of the named table's part, with unmarshalled local access.
func (s *Store) RunAgent(tableName string, part int, agent kvstore.Agent) (any, error) {
	s.mu.Lock()
	t, ok := s.tables[tableName]
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, kvstore.ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	if t.ubiquitous {
		return nil, fmt.Errorf("memstore: RunAgent against ubiquitous table %q", tableName)
	}
	if err := kvstore.CheckPart(part, t.group.parts); err != nil {
		return nil, err
	}
	sh := t.group.shards[part]
	var (
		res    any
		runErr error
	)
	err := sh.dispatch(sh.long, func() {
		sv := &shardView{store: s, group: t.group, shard: sh}
		res, runErr = agent(sv)
	})
	if err != nil {
		return nil, err
	}
	return res, runErr
}

// Close implements kvstore.Store.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	groups := make([]*group, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	for _, g := range groups {
		for _, sh := range g.shards {
			close(sh.done)
		}
	}
	for _, g := range groups {
		for _, sh := range g.shards {
			sh.wg.Wait()
		}
	}
	return nil
}

// roundTrip emulates moving v across a partition boundary. A pre-encoded
// value (codec.Encoded) pays only the decode half — the sender already
// marshalled it once and shared the bytes — and is unwrapped even with
// marshalling disabled, so callers never see the wrapper.
func (s *Store) roundTrip(v any) (any, error) {
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if enc, ok := v.(codec.Encoded); ok {
		if s.metrics != nil && s.marshal {
			s.metrics.AddMarshalledBytes(int64(enc.Size()))
		}
		return enc.Decode()
	}
	if !s.marshal {
		return v, nil
	}
	out, n, err := codec.RoundTrip(v)
	if err != nil {
		return nil, err
	}
	if s.metrics != nil {
		s.metrics.AddMarshalledBytes(int64(n))
	}
	return out, nil
}

// sortedKeys returns the part's keys in codec.CompareKeys order.
func sortedKeys(items map[any]any) []any {
	keys := make([]any, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
	return keys
}

package diskstore

import (
	"fmt"
	"sync"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// table is a diskstore table handle. A ubiquitous diskstore table is simply a
// single-part table (every read hits the same log); the "replicated
// everywhere" contract degrades gracefully in a single-node store.
type table struct {
	store      *Store
	name       string
	group      *group
	ubiquitous bool
}

var _ kvstore.Table = (*table)(nil)

// Name implements kvstore.Table.
func (t *table) Name() string { return t.name }

// Parts implements kvstore.Table.
func (t *table) Parts() int {
	if t.ubiquitous {
		return 1
	}
	return t.group.parts
}

// Ubiquitous implements kvstore.Table.
func (t *table) Ubiquitous() bool { return t.ubiquitous }

// PartOf implements kvstore.Table.
func (t *table) PartOf(key any) int {
	if t.ubiquitous {
		return 0
	}
	return codec.PartOf(t.group.hasher, key, t.group.parts)
}

func (t *table) log(part int) (*shard, *partLog, error) {
	sh := t.group.shards[part]
	sh.mu.Lock()
	pl := sh.logs[t.name]
	if pl == nil {
		sh.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, t.name)
	}
	return sh, pl, nil // caller must sh.mu.Unlock()
}

// Get implements kvstore.Table.
func (t *table) Get(key any) (any, bool, error) {
	t.store.metrics.AddStoreGets(1)
	kbuf, err := codec.Encode(key)
	if err != nil {
		return nil, false, err
	}
	sh, pl, err := t.log(t.PartOf(key))
	if err != nil {
		return nil, false, err
	}
	defer sh.mu.Unlock()
	return pl.getLocked(key, kbuf)
}

// Put implements kvstore.Table.
func (t *table) Put(key, value any) error {
	t.store.metrics.AddStorePuts(1)
	start := time.Now()
	kbuf, err := codec.Encode(key)
	if err != nil {
		return err
	}
	vbuf, err := codec.Encode(value)
	if err != nil {
		return err
	}
	sh, pl, err := t.log(t.PartOf(key))
	if err != nil {
		return err
	}
	if err := pl.applyLocked(opPut, key, kbuf, vbuf); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.mu.Unlock()
	// The durable ack (when configured) happens outside the shard lock so
	// concurrent writers can pile into one group commit.
	if err := t.store.ackDurable(pl); err != nil {
		return err
	}
	t.store.metrics.StoreWrites().ObserveDuration(time.Since(start))
	return nil
}

// Delete implements kvstore.Table.
func (t *table) Delete(key any) error {
	t.store.metrics.AddStoreDeletes(1)
	start := time.Now()
	kbuf, err := codec.Encode(key)
	if err != nil {
		return err
	}
	sh, pl, err := t.log(t.PartOf(key))
	if err != nil {
		return err
	}
	if err := pl.applyLocked(opDelete, key, kbuf, nil); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.mu.Unlock()
	if err := t.store.ackDurable(pl); err != nil {
		return err
	}
	t.store.metrics.StoreWrites().ObserveDuration(time.Since(start))
	return nil
}

// Size implements kvstore.Table.
func (t *table) Size() (int, error) {
	total := 0
	for p := 0; p < t.Parts(); p++ {
		sh, pl, err := t.log(p)
		if err != nil {
			return 0, err
		}
		keys, err := pl.liveKeysLocked()
		sh.mu.Unlock()
		if err != nil {
			return 0, err
		}
		total += len(keys)
	}
	return total, nil
}

// EnumerateParts implements kvstore.Table.
func (t *table) EnumerateParts(pc kvstore.PartConsumer) (any, error) {
	parts := t.Parts()
	results := make([]any, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sv := &shardView{store: t.store, group: t.group, shard: t.group.shards[p]}
			results[p], errs[p] = pc.ProcessPart(sv)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	combined := results[0]
	var err error
	for p := 1; p < parts; p++ {
		combined, err = pc.Combine(combined, results[p])
		if err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// EnumeratePairs implements kvstore.Table.
func (t *table) EnumeratePairs(pc kvstore.PairConsumer) (any, error) {
	return t.EnumerateParts(pairConsumerAdapter{t: t, pc: pc})
}

type pairConsumerAdapter struct {
	t  *table
	pc kvstore.PairConsumer
}

var _ kvstore.PartConsumer = pairConsumerAdapter{}

func (a pairConsumerAdapter) ProcessPart(sv kvstore.ShardView) (any, error) {
	view, err := sv.View(a.t.name)
	if err != nil {
		return nil, err
	}
	if err := a.pc.SetupPart(sv.Part()); err != nil {
		return nil, err
	}
	if err := view.Enumerate(func(k, v any) (bool, error) {
		return a.pc.ConsumePair(k, v)
	}); err != nil {
		return nil, err
	}
	return a.pc.FinishPart(sv.Part())
}

func (a pairConsumerAdapter) Combine(x, y any) (any, error) { return a.pc.Combine(x, y) }

// shardView is the agent window for diskstore.
type shardView struct {
	store *Store
	group *group
	shard *shard
}

var _ kvstore.ShardView = (*shardView)(nil)

// Part implements kvstore.ShardView.
func (sv *shardView) Part() int { return sv.shard.part }

// View implements kvstore.ShardView.
func (sv *shardView) View(tableName string) (kvstore.PartView, error) {
	sv.store.mu.Lock()
	t, ok := sv.store.tables[tableName]
	sv.store.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	if t.ubiquitous {
		return &partView{store: sv.store, table: t, shard: t.group.shards[0]}, nil
	}
	if !coPlaced(t.group, sv.group) {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNotCoPlaced, tableName)
	}
	return &partView{store: sv.store, table: t, shard: t.group.shards[sv.shard.part]}, nil
}

func coPlaced(a, b *group) bool {
	if a == b {
		return true
	}
	if a.parts != b.parts {
		return false
	}
	_, da := a.hasher.(codec.DefaultHasher)
	_, db := b.hasher.(codec.DefaultHasher)
	return da && db
}

// partView is local access to one disk part.
type partView struct {
	store *Store
	table *table
	shard *shard
}

var _ kvstore.PartView = (*partView)(nil)

// Table implements kvstore.PartView.
func (pv *partView) Table() string { return pv.table.name }

// Part implements kvstore.PartView.
func (pv *partView) Part() int { return pv.shard.part }

func (pv *partView) log() (*partLog, error) {
	pl := pv.shard.logs[pv.table.name]
	if pl == nil {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, pv.table.name)
	}
	return pl, nil
}

// Get implements kvstore.PartView.
func (pv *partView) Get(key any) (any, bool, error) {
	pv.store.metrics.AddStoreGets(1)
	kbuf, err := codec.Encode(key)
	if err != nil {
		return nil, false, err
	}
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pl, err := pv.log()
	if err != nil {
		return nil, false, err
	}
	return pl.getLocked(key, kbuf)
}

// Put implements kvstore.PartView.
func (pv *partView) Put(key, value any) error {
	pv.store.metrics.AddStorePuts(1)
	start := time.Now()
	kbuf, err := codec.Encode(key)
	if err != nil {
		return err
	}
	vbuf, err := codec.Encode(value)
	if err != nil {
		return err
	}
	pv.shard.mu.Lock()
	pl, err := pv.log()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	if err := pl.applyLocked(opPut, key, kbuf, vbuf); err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	pv.shard.mu.Unlock()
	if err := pv.store.ackDurable(pl); err != nil {
		return err
	}
	pv.store.metrics.StoreWrites().ObserveDuration(time.Since(start))
	return nil
}

// Delete implements kvstore.PartView.
func (pv *partView) Delete(key any) error {
	pv.store.metrics.AddStoreDeletes(1)
	kbuf, err := codec.Encode(key)
	if err != nil {
		return err
	}
	pv.shard.mu.Lock()
	pl, err := pv.log()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	if err := pl.applyLocked(opDelete, key, kbuf, nil); err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	pv.shard.mu.Unlock()
	return pv.store.ackDurable(pl)
}

// Len implements kvstore.PartView.
func (pv *partView) Len() (int, error) {
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	pl, err := pv.log()
	if err != nil {
		return 0, err
	}
	keys, err := pl.liveKeysLocked()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// Enumerate implements kvstore.PartView.
func (pv *partView) Enumerate(fn kvstore.PairFunc) error {
	return pv.enumerate(fn, false)
}

// EnumerateOrdered implements kvstore.PartView.
func (pv *partView) EnumerateOrdered(fn kvstore.PairFunc) error {
	return pv.enumerate(fn, true)
}

func (pv *partView) enumerate(fn kvstore.PairFunc, ordered bool) error {
	pv.shard.mu.Lock()
	pl, err := pv.log()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	keys, err := pl.liveKeysLocked()
	if err != nil {
		pv.shard.mu.Unlock()
		return err
	}
	pv.shard.mu.Unlock()
	if ordered {
		sortKeysStable(keys)
	}
	for _, k := range keys {
		v, ok, err := pv.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		stop, err := fn(k, v)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

package ebsp

import "time"

// StepObserver receives a notification after every synchronized step — for
// progress reporting, tracing, and experiment harnesses. Observers run on
// the engine's coordinating goroutine between barrier and next step; keep
// them fast.
type StepObserver interface {
	StepCompleted(info StepInfo)
}

// StepObserverFunc adapts a function to StepObserver.
type StepObserverFunc func(info StepInfo)

// StepCompleted implements StepObserver.
func (f StepObserverFunc) StepCompleted(info StepInfo) { f(info) }

// StepInfo describes one completed step.
type StepInfo struct {
	// Job is the job's name.
	Job string
	// Step is the completed step number (from 1).
	Step int
	// Emitted is the number of envelopes produced for the following step;
	// zero means the job is about to finish.
	Emitted int64
	// Aggregates are the step's merged aggregation results.
	Aggregates map[string]any
	// Duration is the step's wall-clock time, barrier included.
	Duration time.Duration
}

// WithObserver installs a step observer on the engine. No-sync execution has
// no steps and produces no notifications.
func WithObserver(o StepObserver) Option {
	return func(e *Engine) { e.observer = o }
}

package serve

// The service over a part-server fleet: the same HTTP surface, the same
// workloads, but every store and mq operation crosses a real TCP boundary —
// and a chaos schedule SIGKILL-equivalent kills one part-server while an SSE
// client is attached to a running job. With replicas the client fails over
// and the job completes with the exact same result bytes as an in-process
// run; DELETE-cancel works over the wire too.

import (
	"bufio"
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/chaos"
	"ripple/internal/netstore"
)

// testFleet serves loopback part-servers inside the test process: the real
// wire protocol over real TCP sockets, without separate processes.
type testFleet struct {
	t       *testing.T
	mu      sync.Mutex
	addrs   []string
	servers []*netstore.Server
}

func startTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{t: t, addrs: make([]string, n), servers: make([]*netstore.Server, n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("fleet listen: %v", err)
		}
		f.addrs[i] = ln.Addr().String()
		srv := netstore.NewServer()
		f.servers[i] = srv
		go func() { _ = srv.Serve(ln) }()
	}
	t.Cleanup(f.stop)
	return f
}

// kill closes one server and respawns a fresh, empty one on the same address
// ~200ms later — an in-process stand-in for SIGKILLing a part-server.
func (f *testFleet) kill(server int) {
	f.mu.Lock()
	victim := f.servers[server]
	addr := f.addrs[server]
	f.mu.Unlock()
	_ = victim.Close()
	time.Sleep(200 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		f.t.Logf("fleet respawn %s: %v", addr, err)
		return
	}
	srv := netstore.NewServer()
	f.mu.Lock()
	f.servers[server] = srv
	f.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

func (f *testFleet) stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, srv := range f.servers {
		_ = srv.Close()
	}
}

func dialTestFleet(t *testing.T, addrs []string, inj *chaos.Injector) *netstore.Client {
	t.Helper()
	opts := []netstore.Option{
		netstore.WithReplicas(2),
		netstore.WithHeartbeat(25*time.Millisecond, 2),
		netstore.WithRequestTimeout(300*time.Millisecond),
		netstore.WithRetries(10),
		netstore.WithBackoffSeed(3),
	}
	if inj != nil {
		opts = append(opts, netstore.WithWireInjector(inj))
	}
	c, err := netstore.Dial(addrs, opts...)
	if err != nil {
		t.Fatalf("dial fleet: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestNetstoreChaosKillUnderSSE kills a part-server while an SSE client is
// streaming a running job's events: the replicated client fails over, the job
// completes, and the result bytes match an uninterrupted in-process run of
// the same params (both are job j1 of their service, so the derived seeds
// agree).
func TestNetstoreChaosKillUnderSSE(t *testing.T) {
	p := map[string]any{"vertices": 120, "edges": 480, "iterations": 12, "seed": 11, "step_delay_ms": 10}

	// Reference: same params on a plain in-process service.
	ref := newService(t, Options{})
	refRec, err := ref.Submit("", "pagerank", params(t, p))
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitStatus(t, ref, refRec.ID, StatusDone)

	fleet := startTestFleet(t, 3)
	var killed atomic.Int32
	inj := chaos.NewInjector(chaos.Schedule{
		Seed:     3,
		NetKills: []chaos.NetKill{{Server: 1, AfterFrames: 150}},
	})
	inj.OnNetKill(func(server int) {
		killed.Add(1)
		fleet.kill(server)
	})
	client := dialTestFleet(t, fleet.addrs, inj)

	svc := newService(t, Options{Store: client, MaxConcurrent: 1, CheckpointEvery: 3})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	rec, err := svc.Submit("", "pagerank", params(t, p))
	if err != nil {
		t.Fatal(err)
	}

	// Attach SSE over real HTTP and stream until the terminal event.
	sseResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	sawDone := make(chan bool, 1)
	go func() {
		steps := 0
		scanner := bufio.NewScanner(sseResp.Body)
		for scanner.Scan() {
			line := scanner.Text()
			if strings.HasPrefix(line, "event: step") {
				steps++
			}
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"status":"done"`) {
				sawDone <- steps > 0
				return
			}
		}
		sawDone <- false
	}()

	done := waitStatus(t, svc, rec.ID, StatusDone)
	select {
	case ok := <-sawDone:
		if !ok {
			t.Error("SSE stream ended without step events and a done status")
		}
	case <-time.After(10 * time.Second):
		t.Error("SSE stream never saw the terminal event")
	}

	if killed.Load() == 0 {
		t.Error("the scheduled part-server kill never fired — the job saw no chaos")
	}
	if client.Failovers() == 0 {
		t.Error("no failovers sensed — the kill never disturbed the run")
	}
	if !bytes.Equal(done.Result, refDone.Result) {
		t.Errorf("networked run under chaos diverged from the in-process run:\n%s\nvs\n%s",
			done.Result, refDone.Result)
	}
}

// TestNetstoreCancel cancels a running job whose engine operates over the
// wire: DELETE interrupts it at the next barrier, and the fleet is left
// healthy enough that a fresh submit runs to done.
func TestNetstoreCancel(t *testing.T) {
	fleet := startTestFleet(t, 3)
	client := dialTestFleet(t, fleet.addrs, nil)
	svc := newService(t, Options{Store: client, MaxConcurrent: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	rec := slowJob(t, svc, "")
	waitStatus(t, svc, rec.ID, StatusRunning)
	time.Sleep(100 * time.Millisecond)

	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+rec.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel over the wire: %d", resp.StatusCode)
	}
	got := waitStatus(t, svc, rec.ID, StatusCanceled)
	if !got.CancelRequested {
		t.Error("canceled record does not show the request")
	}

	// The slot, job name, and fleet tables are all released: a fresh submit
	// over the same wire store runs to done.
	again, err := svc.Submit("", "pagerank", params(t, map[string]any{"vertices": 60, "iterations": 3}))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, svc, again.ID, StatusDone)
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ripple/internal/diskstore"
	"ripple/internal/memstore"
)

func newService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Store == nil {
		store := memstore.New(memstore.WithParts(4))
		t.Cleanup(func() { _ = store.Close() })
		opts.Store = store
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

func waitStatus(t *testing.T, s *Service, id string, want ...string) *JobRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if rec.Status == w {
				return rec
			}
		}
		if rec.Terminal() {
			t.Fatalf("job %s reached terminal %q (err %q), wanted one of %v", id, rec.Status, rec.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return nil
}

func params(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := newService(t, Options{})
	rec, err := s.Submit("", "pagerank", params(t, map[string]any{
		"vertices": 100, "edges": 400, "iterations": 5, "seed": 7,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusQueued || rec.Tenant != "anonymous" {
		t.Fatalf("submitted record: %+v", rec)
	}
	done := waitStatus(t, s, rec.ID, StatusDone)
	if len(done.Result) == 0 {
		t.Fatal("done job has no result")
	}
	var result struct {
		Ranks map[string]float64 `json:"ranks"`
		Steps int                `json:"steps"`
	}
	if err := json.Unmarshal(done.Result, &result); err != nil {
		t.Fatal(err)
	}
	if len(result.Ranks) != 100 || result.Steps < 5 {
		t.Fatalf("result: %d ranks, %d steps", len(result.Ranks), result.Steps)
	}
	// Ranks sum to ~1 (a real PageRank, not garbage).
	sum := 0.0
	for _, r := range result.Ranks {
		sum += r
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("ranks sum to %v", sum)
	}

	// The event history tells the whole story: queued → running → done with
	// step events in between.
	events, _, cancel := s.hub.subscribe(rec.ID)
	cancel()
	var statuses []string
	steps := 0
	for _, ev := range events {
		switch ev.Type {
		case "status":
			statuses = append(statuses, ev.Data["status"].(string))
		case "step":
			steps++
		}
	}
	if strings.Join(statuses, ",") != "queued,running,done" {
		t.Errorf("status sequence = %v", statuses)
	}
	if steps < 5 {
		t.Errorf("only %d step events", steps)
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	s := newService(t, Options{MaxConcurrent: 3})
	ids := map[string]string{}
	for wl, p := range map[string]any{
		"pagerank": map[string]any{"vertices": 60, "iterations": 3},
		"sssp":     map[string]any{"vertices": 80, "batches": 2, "batch_size": 10},
		"summa":    map[string]any{"n": 24, "grid": 3},
	} {
		rec, err := s.Submit("", wl, params(t, p))
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		ids[wl] = rec.ID
	}
	for wl, id := range ids {
		rec := waitStatus(t, s, id, StatusDone)
		if len(rec.Result) == 0 {
			t.Errorf("%s: empty result", wl)
		}
	}
}

func TestUnknownWorkloadAndBadParams(t *testing.T) {
	s := newService(t, Options{})
	if _, err := s.Submit("", "nope", nil); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown workload: %v", err)
	}
	rec, err := s.Submit("", "pagerank", json.RawMessage(`{"no_such_knob": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, rec.ID, StatusFailed)
	if !strings.Contains(got.Error, "no_such_knob") {
		t.Errorf("failure does not name the bad field: %q", got.Error)
	}
}

// slowJob submits a pagerank run slowed enough to still be running when the
// test acts on it.
func slowJob(t *testing.T, s *Service, tenant string) *JobRecord {
	t.Helper()
	rec, err := s.Submit(tenant, "pagerank", params(t, map[string]any{
		"vertices": 80, "iterations": 2000, "step_delay_ms": 20,
	}))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestCancelRunningJobInProcess(t *testing.T) {
	s := newService(t, Options{MaxConcurrent: 1})
	rec := slowJob(t, s, "")
	waitStatus(t, s, rec.ID, StatusRunning)
	time.Sleep(50 * time.Millisecond) // let it get into the step loop

	start := time.Now()
	if _, err := s.Cancel(rec.ID); err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, s, rec.ID, StatusCanceled)
	if !got.CancelRequested {
		t.Error("canceled record does not show the request")
	}
	// The interrupt lands at the next barrier: one step delay plus slack,
	// not minutes of remaining iterations.
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancel took %v", el)
	}

	// The slot and job name are released: a fresh submit runs to done on the
	// same engine, and the canceled job's partial state did not poison it.
	again, err := s.Submit("", "pagerank", params(t, map[string]any{"vertices": 60, "iterations": 3}))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, again.ID, StatusDone)
}

func TestCancelQueuedJob(t *testing.T) {
	s := newService(t, Options{MaxConcurrent: 1, TenantQuota: 8})
	running := slowJob(t, s, "")
	waitStatus(t, s, running.ID, StatusRunning)
	queued := slowJob(t, s, "")
	if rec, _ := s.Get(queued.ID); rec.Status != StatusQueued {
		t.Fatalf("second job is %q, want queued", rec.Status)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if rec, _ := s.Get(queued.ID); rec.Status != StatusCanceled {
		t.Fatalf("canceled queued job is %q", rec.Status)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, running.ID, StatusCanceled)
}

func TestTenantQuotaAndQueueBounds(t *testing.T) {
	s := newService(t, Options{MaxConcurrent: 1, TenantQuota: 2, QueueDepth: 2})
	a1 := slowJob(t, s, "alice")
	waitStatus(t, s, a1.ID, StatusRunning)
	if _, err := s.Submit("alice", "summa", nil); err != nil {
		t.Fatalf("second alice job within quota: %v", err)
	}
	// Third live alice job breaches the quota; bob is unaffected.
	if _, err := s.Submit("alice", "summa", nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("quota breach: %v", err)
	}
	b1, err := s.Submit("bob", "summa", nil)
	if err != nil {
		t.Fatalf("bob within quota: %v", err)
	}
	// Queue now holds two entries (alice's summa + bob's); depth 2 is full.
	if _, err := s.Submit("carol", "summa", nil); !errors.Is(err, ErrQueueFull) {
		t.Errorf("queue overflow: %v", err)
	}
	// Draining the queue frees both quota and queue space.
	if _, err := s.Cancel(a1.ID); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, b1.ID, StatusDone)
	if _, err := s.Submit("carol", "summa", nil); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
}

func TestDeterministicResultAcrossServices(t *testing.T) {
	p := map[string]any{"vertices": 120, "edges": 500, "iterations": 6, "seed": 99}
	results := make([]json.RawMessage, 2)
	for i := range results {
		s := newService(t, Options{})
		rec, err := s.Submit("", "pagerank", params(t, p))
		if err != nil {
			t.Fatal(err)
		}
		done := waitStatus(t, s, rec.ID, StatusDone)
		results[i] = done.Result
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("same params produced different result bytes across services")
	}
}

// TestRestartRecoveryResumesFromCheckpoint is the in-process version of the
// serve-smoke restart story: a service over a disk store is shut down
// mid-job; a second service over the same directory re-lists the job,
// resumes it from its checkpoint, and the result bytes match an
// uninterrupted run of the same params.
func TestRestartRecoveryResumesFromCheckpoint(t *testing.T) {
	p := map[string]any{"vertices": 100, "edges": 400, "iterations": 30, "seed": 5, "step_delay_ms": 20}

	// Reference: uninterrupted run (its own store, same params).
	ref := newService(t, Options{CheckpointEvery: 3})
	refRec, err := ref.Submit("", "pagerank", params(t, p))
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitStatus(t, ref, refRec.ID, StatusDone)

	dir := t.TempDir()
	open := func() *diskstore.Store {
		ds, err := diskstore.New(dir, diskstore.WithParts(4))
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	// First life: run until at least one checkpoint exists, then shut down.
	ds1 := open()
	s1, err := New(Options{Store: ds1, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	rec, err := s1.Submit("", "pagerank", params(t, p))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s1, rec.ID, StatusRunning)
	waitForStepEvents(t, s1, rec.ID, 8) // > 2 checkpoint cadences in
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	_ = ds1.Close()

	// The record survived as "running" — not canceled by the shutdown.
	if got, _ := s1.Get(rec.ID); got.Status != StatusRunning {
		t.Fatalf("after shutdown, job is %q, want running", got.Status)
	}

	// Second life: same directory, fresh store handle and service.
	ds2 := open()
	t.Cleanup(func() { _ = ds2.Close() })
	s2, err := New(Options{Store: ds2, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Close(ctx)
	})
	got, err := s2.Get(rec.ID)
	if err != nil {
		t.Fatalf("restarted service lost the job: %v", err)
	}
	if !got.Resumed {
		t.Error("recovered record not marked resumed")
	}
	done := waitStatus(t, s2, rec.ID, StatusDone)
	var result struct {
		Resumed bool `json:"resumed"`
	}
	if err := json.Unmarshal(done.Result, &result); err != nil {
		t.Fatal(err)
	}
	if !result.Resumed {
		t.Error("resumed run did not use the checkpoint (fell back to rerun)")
	}

	// Byte-identical to the uninterrupted reference, modulo the resumed flag.
	if norm(t, done.Result) != norm(t, refDone.Result) {
		t.Errorf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", done.Result, refDone.Result)
	}
}

// norm re-marshals a result with the resumed flag cleared, for comparison
// between resumed and uninterrupted runs.
func norm(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "resumed")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func waitForStepEvents(t *testing.T, s *Service, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		events, _, cancel := s.hub.subscribe(id)
		cancel()
		steps := 0
		for _, ev := range events {
			if ev.Type == "step" {
				steps++
			}
		}
		if steps >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never produced %d step events", id, n)
}

// TestHTTPAPI exercises the full HTTP surface over httptest: submit, status,
// SSE streaming to completion, result, quota as 429, cancel as DELETE.
func TestHTTPAPI(t *testing.T) {
	s := newService(t, Options{MaxConcurrent: 1, TenantQuota: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(tenant, body string) (*http.Response, map[string]any) {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if tenant != "" {
			req.Header.Set("X-API-Key", tenant)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		_ = resp.Body.Close()
		return resp, m
	}

	// Slowed enough that it is still live for the quota check below, but
	// bounded so the SSE stream still ends promptly.
	resp, sub := post("alice", `{"workload":"pagerank","params":{"vertices":80,"iterations":20,"step_delay_ms":25}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, sub)
	}
	id := sub["id"].(string)

	// Quota: alice holds 1 live job; a second submit is 429, bob's is fine.
	if resp, _ := post("alice", `{"workload":"summa"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("quota breach over HTTP: %d", resp.StatusCode)
	}
	resp, bob := post("bob", `{"workload":"summa","params":{"n":24}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit: %d", resp.StatusCode)
	}

	// SSE: stream until the terminal status event arrives.
	sseResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sawStep, sawDone := false, false
	scanner := bufio.NewScanner(sseResp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: step") {
			sawStep = true
		}
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"status":"done"`) {
			sawDone = true
		}
	}
	if !sawStep || !sawDone {
		t.Fatalf("SSE stream: step=%v done=%v", sawStep, sawDone)
	}

	// Result is now servable; an unknown job 404s.
	res, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result map[string]any
	_ = json.NewDecoder(res.Body).Decode(&result)
	_ = res.Body.Close()
	if res.StatusCode != http.StatusOK || result["ranks"] == nil {
		t.Fatalf("result: %d %v", res.StatusCode, result)
	}
	if res, _ := ts.Client().Get(ts.URL + "/v1/jobs/nope/result"); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d", res.StatusCode)
	} else {
		res.Body.Close()
	}

	// DELETE cancels bob's job (or races its completion; both are fine).
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+bob["id"].(string), nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("cancel: %d", dresp.StatusCode)
	}

	// Workload listing.
	wres, _ := ts.Client().Get(ts.URL + "/v1/workloads")
	var wl map[string][]string
	_ = json.NewDecoder(wres.Body).Decode(&wl)
	_ = wres.Body.Close()
	if fmt.Sprint(wl["workloads"]) != "[pagerank sssp summa]" {
		t.Errorf("workloads: %v", wl)
	}
}

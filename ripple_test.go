// End-to-end tests of the public facade: everything a downstream user would
// touch, exercised only through the ripple package API.
package ripple

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFacadeQuickstartShape(t *testing.T) {
	store := NewMemStore(MemParts(4))
	t.Cleanup(func() { _ = store.Close() })
	engine := NewEngine(store)

	job := &Job{
		Name:        "facade",
		StateTables: []string{"facade_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, m := range ctx.InputMessages() {
				ctx.WriteState(0, m)
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 1, Message: "hi"}}}},
	}
	res, err := engine.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("Steps = %d", res.Steps)
	}
	tab, _ := store.LookupTable("facade_state")
	if v, ok, _ := tab.Get(1); !ok || v != "hi" {
		t.Errorf("state = %v, %v", v, ok)
	}
}

func TestFacadeAllStores(t *testing.T) {
	stores := map[string]Store{
		"mem":  NewMemStore(),
		"grid": NewGridStore(GridReplicas(2)),
	}
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["disk"] = disk
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(func() { _ = store.Close() })
			tab, err := store.CreateTable("t", WithParts(3))
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.Put("k", 42); err != nil {
				t.Fatal(err)
			}
			if v, ok, _ := tab.Get("k"); !ok || v != 42 {
				t.Errorf("Get = %v, %v", v, ok)
			}
		})
	}
}

func TestFacadeMapReduce(t *testing.T) {
	store := NewMemStore(MemParts(3))
	t.Cleanup(func() { _ = store.Close() })
	engine := NewEngine(store)
	docs, _ := store.CreateTable("in")
	_ = docs.Put(1, "x y x")
	res, err := RunMapReduce(engine, &MapReduceJob{
		Name:   "wc",
		Input:  "in",
		Output: "out",
		Mapper: MapperFunc(func(_, v any, emit Emitter) error {
			for _, w := range strings.Fields(v.(string)) {
				emit(w, 1)
			}
			return nil
		}),
		Reducer: ReducerFunc(func(k any, vs []any, emit Emitter) error {
			emit(k, len(vs))
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2 {
		t.Errorf("Steps = %d", res.Steps)
	}
	out, _ := store.LookupTable("out")
	if v, _, _ := out.Get("x"); v != 2 {
		t.Errorf("x = %v", v)
	}
}

func TestFacadeGraph(t *testing.T) {
	store := NewMemStore(MemParts(3))
	t.Cleanup(func() { _ = store.Close() })
	engine := NewEngine(store)
	vt, _ := store.CreateTable("vg")
	_ = vt.Put(1, GraphVertex{ID: 1, Value: 10, Edges: []GraphEdge{{To: 2}}})
	_ = vt.Put(2, GraphVertex{ID: 2, Value: 3, Edges: []GraphEdge{{To: 1}}})
	_, err := RunGraph(engine, &GraphSpec{
		Name:        "gmax",
		VertexTable: "vg",
		Program: GraphProgramFunc(func(ctx *GraphContext) error {
			cur := ctx.Value().(int)
			changed := ctx.Superstep() == 1
			for _, m := range ctx.Messages() {
				if v := m.(int); v > cur {
					cur = v
					changed = true
				}
			}
			if changed {
				ctx.SetValue(cur)
				ctx.SendToNeighbors(cur)
			}
			ctx.VoteToHalt()
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, _, _ := vt.Get(2)
	if raw.(GraphVertex).Value != 10 {
		t.Errorf("vertex 2 = %v", raw.(GraphVertex).Value)
	}
}

func TestFacadeMetricsAndOptions(t *testing.T) {
	m := &Metrics{}
	store := NewMemStore(MemParts(2), MemMetrics(m), MemLatency(time.Microsecond))
	t.Cleanup(func() { _ = store.Close() })
	engine := NewEngine(store, WithMetrics(m), WithAggTableThreshold(0))
	var calls atomic.Int64
	_, err := engine.Run(&Job{
		Name:        "met",
		StateTables: []string{"met_state"},
		Aggregators: map[string]Aggregator{"n": IntSum{}},
		Compute: ComputeFunc(func(ctx *Context) bool {
			calls.Add(1)
			ctx.AggregateValue("n", 1)
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.ComputeInvocations != calls.Load() {
		t.Errorf("metrics invocations %d != %d", snap.ComputeInvocations, calls.Load())
	}
	if snap.AggregationRounds == 0 {
		t.Error("table aggregation path not used despite threshold 0")
	}
}

func TestFacadeCheckpointResume(t *testing.T) {
	store := NewMemStore(MemParts(2))
	t.Cleanup(func() { _ = store.Close() })
	engine := NewEngine(store, WithCheckpoints(2))
	build := func(abort bool) *Job {
		j := &Job{
			Name:        "fck",
			StateTables: []string{"fck_state"},
			Compute: ComputeFunc(func(ctx *Context) bool {
				for _, m := range ctx.InputMessages() {
					n := m.(int)
					ctx.WriteState(0, n)
					if n < 9 {
						ctx.Send(ctx.Key().(int)+1, n+1)
					}
				}
				return false
			}),
			Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
		}
		if abort {
			j.Aborter = AborterFunc(func(step int, _ map[string]any) bool { return step >= 4 })
		}
		return j
	}
	if _, err := engine.Run(build(true)); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Resume(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 {
		t.Errorf("Steps = %d, want 10", res.Steps)
	}
	if _, err := engine.Resume(build(false)); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("second resume err = %v, want ErrNoCheckpoint", err)
	}
}

func TestFacadeDumpAndEnumerate(t *testing.T) {
	store := NewMemStore(MemParts(2))
	t.Cleanup(func() { _ = store.Close() })
	tab, _ := store.CreateTable("d")
	for i := 0; i < 5; i++ {
		_ = tab.Put(i, i*i)
	}
	dump, err := DumpTable(tab)
	if err != nil || len(dump) != 5 {
		t.Fatalf("DumpTable = %v, %v", dump, err)
	}
	n := 0
	if err := EnumerateAll(tab, func(_, _ any) (bool, error) {
		n++
		return false, nil
	}); err != nil || n != 5 {
		t.Errorf("EnumerateAll visited %d, err %v", n, err)
	}
}

type facadeCustom struct{ N int }

func TestFacadeRegisterType(t *testing.T) {
	RegisterType(facadeCustom{})
	store := NewMemStore(MemParts(2))
	t.Cleanup(func() { _ = store.Close() })
	tab, _ := store.CreateTable("c")
	if err := tab.Put("k", facadeCustom{N: 7}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tab.Get("k")
	if err != nil || !ok || v.(facadeCustom).N != 7 {
		t.Errorf("Get = %v, %v, %v", v, ok, err)
	}
}

func TestFacadeUbiquitousBroadcast(t *testing.T) {
	store := NewMemStore(MemParts(3))
	t.Cleanup(func() { _ = store.Close() })
	ref, err := store.CreateTable("ref", Ubiquitous())
	if err != nil {
		t.Fatal(err)
	}
	_ = ref.Put("k", "broadcast")
	engine := NewEngine(store)
	var got atomic.Value
	_, err = engine.Run(&Job{
		Name:           "bc",
		StateTables:    []string{"bc_state"},
		ReferenceTable: "ref",
		Compute: ComputeFunc(func(ctx *Context) bool {
			v, _ := ctx.Broadcast("k")
			got.Store(v)
			return false
		}),
		Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != "broadcast" {
		t.Errorf("broadcast = %v", got.Load())
	}
}

package netstore

import (
	"fmt"
	"sort"
	"sync"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// encKey encodes a key for the wire.
func encKey(key any) ([]byte, error) { return codec.Encode(key) }

// encVal encodes a value for the wire; pre-encoded values ship their bytes
// directly (the PreEncode fast path survives the network hop).
func encVal(v any) ([]byte, error) {
	if e, ok := v.(codec.Encoded); ok {
		return e.Bytes(), nil
	}
	return codec.Encode(v)
}

// decVal decodes a wire value. Like the in-process stores' round-trip, a
// value stored as codec.Encoded comes back as the underlying value.
func decVal(b []byte) (any, error) { return codec.Decode(b) }

// netTable is the client-side handle to one remote table.
type netTable struct {
	c    *Client
	name string
	meta tableMeta
}

var _ kvstore.Table = (*netTable)(nil)

// Name implements kvstore.Table.
func (t *netTable) Name() string { return t.name }

// Parts implements kvstore.Table.
func (t *netTable) Parts() int {
	if t.meta.ubiq {
		return 1
	}
	return t.meta.parts
}

// Ubiquitous implements kvstore.Table.
func (t *netTable) Ubiquitous() bool { return t.meta.ubiq }

// PartOf implements kvstore.Table.
func (t *netTable) PartOf(key any) int {
	if t.meta.ubiq {
		return 0
	}
	return codec.PartOf(codec.DefaultHasher{}, key, t.meta.parts)
}

// Get implements kvstore.Table.
func (t *netTable) Get(key any) (any, bool, error) {
	t.c.met.AddStoreGets(1)
	part := t.PartOf(key)
	kb, err := encKey(key)
	if err != nil {
		return nil, false, err
	}
	resp, err := t.c.callOp(t.c.replicaSetFor(part, t.meta.ubiq),
		frame{Op: opGet, Name: t.name, Part: part, Key: kb}, false)
	if err != nil {
		return nil, false, err
	}
	if !resp.Flag {
		return nil, false, nil
	}
	v, err := decVal(resp.Val)
	return v, err == nil, err
}

// Put implements kvstore.Table.
func (t *netTable) Put(key, value any) error {
	t.c.met.AddStorePuts(1)
	part := t.PartOf(key)
	kb, err := encKey(key)
	if err != nil {
		return err
	}
	vb, err := encVal(value)
	if err != nil {
		return err
	}
	t.c.met.AddMarshalledBytes(int64(len(kb) + len(vb)))
	_, err = t.c.callOp(t.c.replicaSetFor(part, t.meta.ubiq),
		frame{Op: opPut, Name: t.name, Part: part, Key: kb, Val: vb}, true)
	return err
}

// Delete implements kvstore.Table.
func (t *netTable) Delete(key any) error {
	t.c.met.AddStoreDeletes(1)
	part := t.PartOf(key)
	kb, err := encKey(key)
	if err != nil {
		return err
	}
	_, err = t.c.callOp(t.c.replicaSetFor(part, t.meta.ubiq),
		frame{Op: opDelete, Name: t.name, Part: part, Key: kb}, true)
	return err
}

// Size implements kvstore.Table.
func (t *netTable) Size() (int, error) {
	total := 0
	for part := 0; part < t.Parts(); part++ {
		resp, err := t.c.callOp(t.c.replicaSetFor(part, t.meta.ubiq),
			frame{Op: opLen, Name: t.name, Part: part}, false)
		if err != nil {
			return 0, err
		}
		total += int(resp.Aux)
	}
	return total, nil
}

// EnumerateParts implements kvstore.Table: ProcessPart runs once per part in
// parallel (each part's ops flowing to that part's replica set), and results
// are folded in part order so the combined result is deterministic — the
// same contract as the in-process stores.
func (t *netTable) EnumerateParts(pc kvstore.PartConsumer) (any, error) {
	if t.meta.ubiq {
		return pc.ProcessPart(&netShardView{c: t.c, anchor: t.name, meta: t.meta, part: 0})
	}
	results := make([]any, t.meta.parts)
	errs := make([]error, t.meta.parts)
	var wg sync.WaitGroup
	for p := 0; p < t.meta.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sv := &netShardView{c: t.c, anchor: t.name, meta: t.meta, part: p}
			results[p], errs[p] = pc.ProcessPart(sv)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	combined := results[0]
	var err error
	for p := 1; p < len(results); p++ {
		combined, err = pc.Combine(combined, results[p])
		if err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// EnumeratePairs implements kvstore.Table.
func (t *netTable) EnumeratePairs(pc kvstore.PairConsumer) (any, error) {
	if t.meta.ubiq {
		if err := pc.SetupPart(0); err != nil {
			return nil, err
		}
		pairs, err := t.c.snapshotPairs(t.name, 0, t.meta, true)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			stop, err := pc.ConsumePair(p.k, p.v)
			if err != nil {
				return nil, err
			}
			if stop {
				break
			}
		}
		return pc.FinishPart(0)
	}
	return t.EnumerateParts(netPairAdapter{t: t, pc: pc})
}

// netPairAdapter runs a PairConsumer over one part as a PartConsumer.
type netPairAdapter struct {
	t  *netTable
	pc kvstore.PairConsumer
}

var _ kvstore.PartConsumer = netPairAdapter{}

func (a netPairAdapter) ProcessPart(sv kvstore.ShardView) (any, error) {
	view, err := sv.View(a.t.name)
	if err != nil {
		return nil, err
	}
	if err := a.pc.SetupPart(sv.Part()); err != nil {
		return nil, err
	}
	enumerate := view.Enumerate
	if a.t.meta.ordered {
		enumerate = view.EnumerateOrdered
	}
	if err := enumerate(func(k, v any) (bool, error) {
		return a.pc.ConsumePair(k, v)
	}); err != nil {
		return nil, err
	}
	return a.pc.FinishPart(sv.Part())
}

func (a netPairAdapter) Combine(x, y any) (any, error) { return a.pc.Combine(x, y) }

// decodedPair is one snapshot entry decoded back to Go values.
type decodedPair struct {
	k, v any
}

// snapshotPairs fetches one part's full contents and decodes them; with
// ordered set, the pairs come back in codec.CompareKeys order.
func (c *Client) snapshotPairs(table string, part int, meta tableMeta, ordered bool) ([]decodedPair, error) {
	resp, err := c.callOp(c.replicaSetFor(part, meta.ubiq),
		frame{Op: opSnapshot, Name: table, Part: part}, false)
	if err != nil {
		return nil, err
	}
	pairs := make([]decodedPair, 0, len(resp.Pairs))
	for _, wp := range resp.Pairs {
		k, err := codec.Decode(wp.K)
		if err != nil {
			return nil, fmt.Errorf("netstore: snapshot %q part %d: bad key: %w", table, part, err)
		}
		v, err := decVal(wp.V)
		if err != nil {
			return nil, fmt.Errorf("netstore: snapshot %q part %d: bad value: %w", table, part, err)
		}
		pairs = append(pairs, decodedPair{k: k, v: v})
	}
	if ordered {
		sort.SliceStable(pairs, func(i, j int) bool {
			return codec.CompareKeys(pairs[i].k, pairs[j].k) < 0
		})
	}
	return pairs, nil
}

// netShardView is an agent's window onto one part of every co-placed table,
// backed by RPCs to the part's replica set.
type netShardView struct {
	c      *Client
	anchor string // the table the agent was dispatched against
	meta   tableMeta
	part   int
}

var _ kvstore.ShardView = (*netShardView)(nil)

// Part implements kvstore.ShardView.
func (sv *netShardView) Part() int { return sv.part }

// View implements kvstore.ShardView. Co-placement is structural: placement
// is a pure function of (part, fleet), so any two tables with the same part
// count are co-placed, and ubiquitous tables are visible from everywhere.
func (sv *netShardView) View(tableName string) (kvstore.PartView, error) {
	meta, ok := sv.c.metaOf(tableName)
	if !ok {
		return nil, fmt.Errorf("%w: %q", kvstore.ErrNoTable, tableName)
	}
	if meta.ubiq {
		return &netPartView{c: sv.c, table: tableName, meta: meta, part: sv.part, rpcPart: 0}, nil
	}
	if meta.parts != sv.meta.parts && !sv.meta.ubiq {
		return nil, fmt.Errorf("%w: %q has %d parts, agent anchor %q has %d",
			kvstore.ErrNotCoPlaced, tableName, meta.parts, sv.anchor, sv.meta.parts)
	}
	return &netPartView{c: sv.c, table: tableName, meta: meta, part: sv.part, rpcPart: sv.part}, nil
}

// metaOf resolves a table's registry entry, falling back to the servers for
// tables created by other clients.
func (c *Client) metaOf(name string) (tableMeta, bool) {
	c.mu.Lock()
	meta, ok := c.tables[name]
	c.mu.Unlock()
	if ok {
		return meta, true
	}
	if _, found := c.LookupTable(name); found {
		c.mu.Lock()
		meta, ok = c.tables[name]
		c.mu.Unlock()
		return meta, ok
	}
	return tableMeta{}, false
}

// netPartView gives an agent access to one part of one table over RPC. It
// reports the anchor part index (ubiquitous views included, mirroring the
// in-process stores) while routing RPCs to the owning part.
type netPartView struct {
	c       *Client
	table   string
	meta    tableMeta
	part    int // reported part index (the agent's anchor part)
	rpcPart int // part targeted on the wire (0 for ubiquitous tables)
}

var _ kvstore.PartView = (*netPartView)(nil)

// Table implements kvstore.PartView.
func (pv *netPartView) Table() string { return pv.table }

// Part implements kvstore.PartView.
func (pv *netPartView) Part() int { return pv.part }

// Get implements kvstore.PartView.
func (pv *netPartView) Get(key any) (any, bool, error) {
	pv.c.met.AddStoreGets(1)
	kb, err := encKey(key)
	if err != nil {
		return nil, false, err
	}
	resp, err := pv.c.callOp(pv.c.replicaSetFor(pv.rpcPart, pv.meta.ubiq),
		frame{Op: opGet, Name: pv.table, Part: pv.rpcPart, Key: kb}, false)
	if err != nil {
		return nil, false, err
	}
	if !resp.Flag {
		return nil, false, nil
	}
	v, err := decVal(resp.Val)
	return v, err == nil, err
}

// Put implements kvstore.PartView.
func (pv *netPartView) Put(key, value any) error {
	pv.c.met.AddStorePuts(1)
	kb, err := encKey(key)
	if err != nil {
		return err
	}
	vb, err := encVal(value)
	if err != nil {
		return err
	}
	_, err = pv.c.callOp(pv.c.replicaSetFor(pv.rpcPart, pv.meta.ubiq),
		frame{Op: opPut, Name: pv.table, Part: pv.rpcPart, Key: kb, Val: vb}, true)
	return err
}

// Delete implements kvstore.PartView.
func (pv *netPartView) Delete(key any) error {
	pv.c.met.AddStoreDeletes(1)
	kb, err := encKey(key)
	if err != nil {
		return err
	}
	_, err = pv.c.callOp(pv.c.replicaSetFor(pv.rpcPart, pv.meta.ubiq),
		frame{Op: opDelete, Name: pv.table, Part: pv.rpcPart, Key: kb}, true)
	return err
}

// Len implements kvstore.PartView.
func (pv *netPartView) Len() (int, error) {
	resp, err := pv.c.callOp(pv.c.replicaSetFor(pv.rpcPart, pv.meta.ubiq),
		frame{Op: opLen, Name: pv.table, Part: pv.rpcPart}, false)
	if err != nil {
		return 0, err
	}
	return int(resp.Aux), nil
}

// Enumerate implements kvstore.PartView: one snapshot RPC, then a local
// visit. The snapshot is taken at a point between the caller's operations
// (the same guarantee the in-process stores give for enumeration during
// concurrent writes).
func (pv *netPartView) Enumerate(fn kvstore.PairFunc) error {
	return pv.enumerate(fn, false)
}

// EnumerateOrdered implements kvstore.PartView.
func (pv *netPartView) EnumerateOrdered(fn kvstore.PairFunc) error {
	return pv.enumerate(fn, true)
}

func (pv *netPartView) enumerate(fn kvstore.PairFunc, ordered bool) error {
	pairs, err := pv.c.snapshotPairs(pv.table, pv.rpcPart, pv.meta, ordered)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		stop, err := fn(p.k, p.v)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

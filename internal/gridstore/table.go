package gridstore

import (
	"fmt"
	"sync"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

var _ kvstore.Table = (*table)(nil)

// Name implements kvstore.Table.
func (t *table) Name() string { return t.name }

// Parts implements kvstore.Table.
func (t *table) Parts() int {
	if t.ubiquitous {
		return 1
	}
	return t.group.parts
}

// Ubiquitous implements kvstore.Table.
func (t *table) Ubiquitous() bool { return t.ubiquitous }

// PartOf implements kvstore.Table.
func (t *table) PartOf(key any) int {
	if t.ubiquitous {
		return 0
	}
	return codec.PartOf(t.group.hasher, key, t.group.parts)
}

// Get implements kvstore.Table (remote-client path: marshalled).
func (t *table) Get(key any) (any, bool, error) {
	t.store.metrics.AddStoreGets(1)
	if t.ubiquitous {
		t.ubiqMu.RLock()
		v, ok := t.ubiq[key]
		t.ubiqMu.RUnlock()
		return v, ok, nil
	}
	sh := t.group.shards[t.PartOf(key)]
	sh.mu.Lock()
	prim, err := sh.primaryLocked()
	if err != nil {
		sh.mu.Unlock()
		return nil, false, err
	}
	v, ok := prim.data[t.name][key]
	sh.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	out, err := t.store.roundTrip(v)
	return out, err == nil, err
}

// Put implements kvstore.Table: the write is applied synchronously to every
// alive replica.
func (t *table) Put(key, value any) error {
	t.store.metrics.AddStorePuts(1)
	v, err := t.store.roundTrip(value)
	if err != nil {
		return err
	}
	if t.ubiquitous {
		t.ubiqMu.Lock()
		t.ubiq[key] = v
		t.ubiqMu.Unlock()
		return nil
	}
	sh := t.group.shards[t.PartOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.primaryLocked(); err != nil {
		return err
	}
	for _, r := range sh.replicas {
		if !r.alive {
			continue
		}
		items := r.data[t.name]
		if items == nil {
			items = make(map[any]any)
			r.data[t.name] = items
		}
		items[key] = v
	}
	return nil
}

// Delete implements kvstore.Table.
func (t *table) Delete(key any) error {
	t.store.metrics.AddStoreDeletes(1)
	if t.ubiquitous {
		t.ubiqMu.Lock()
		delete(t.ubiq, key)
		t.ubiqMu.Unlock()
		return nil
	}
	sh := t.group.shards[t.PartOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, err := sh.primaryLocked(); err != nil {
		return err
	}
	for _, r := range sh.replicas {
		if r.alive {
			delete(r.data[t.name], key)
		}
	}
	return nil
}

// Size implements kvstore.Table.
func (t *table) Size() (int, error) {
	if t.ubiquitous {
		t.ubiqMu.RLock()
		defer t.ubiqMu.RUnlock()
		return len(t.ubiq), nil
	}
	total := 0
	for _, sh := range t.group.shards {
		sh.mu.Lock()
		prim, err := sh.primaryLocked()
		if err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		total += len(prim.data[t.name])
		sh.mu.Unlock()
	}
	return total, nil
}

// EnumerateParts implements kvstore.Table.
func (t *table) EnumerateParts(pc kvstore.PartConsumer) (any, error) {
	if t.ubiquitous {
		sv := &ubiqShardView{table: t}
		return pc.ProcessPart(sv)
	}
	results := make([]any, t.group.parts)
	errs := make([]error, t.group.parts)
	var wg sync.WaitGroup
	for p := 0; p < t.group.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sv := &shardView{store: t.store, group: t.group, shard: t.group.shards[p]}
			results[p], errs[p] = pc.ProcessPart(sv)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	combined := results[0]
	var err error
	for p := 1; p < len(results); p++ {
		combined, err = pc.Combine(combined, results[p])
		if err != nil {
			return nil, err
		}
	}
	return combined, nil
}

// EnumeratePairs implements kvstore.Table.
func (t *table) EnumeratePairs(pc kvstore.PairConsumer) (any, error) {
	if t.ubiquitous {
		if err := pc.SetupPart(0); err != nil {
			return nil, err
		}
		t.ubiqMu.RLock()
		keys := sortedKeys(t.ubiq)
		items := make(map[any]any, len(t.ubiq))
		for k, v := range t.ubiq {
			items[k] = v
		}
		t.ubiqMu.RUnlock()
		for _, k := range keys {
			stop, err := pc.ConsumePair(k, items[k])
			if err != nil {
				return nil, err
			}
			if stop {
				break
			}
		}
		return pc.FinishPart(0)
	}
	return t.EnumerateParts(pairConsumerAdapter{t: t, pc: pc})
}

type pairConsumerAdapter struct {
	t  *table
	pc kvstore.PairConsumer
}

var _ kvstore.PartConsumer = pairConsumerAdapter{}

func (a pairConsumerAdapter) ProcessPart(sv kvstore.ShardView) (any, error) {
	view, err := sv.View(a.t.name)
	if err != nil {
		return nil, err
	}
	if err := a.pc.SetupPart(sv.Part()); err != nil {
		return nil, err
	}
	enumerate := view.Enumerate
	if a.t.ordered {
		enumerate = view.EnumerateOrdered
	}
	if err := enumerate(func(k, v any) (bool, error) {
		return a.pc.ConsumePair(k, v)
	}); err != nil {
		return nil, err
	}
	return a.pc.FinishPart(sv.Part())
}

func (a pairConsumerAdapter) Combine(x, y any) (any, error) { return a.pc.Combine(x, y) }

// shardView is an agent's (or transaction's) window onto one shard.
type shardView struct {
	store *Store
	group *group
	shard *shard
	tx    *txState // nil outside transactions
}

var _ kvstore.ShardView = (*shardView)(nil)

// Part implements kvstore.ShardView.
func (sv *shardView) Part() int { return sv.shard.part }

// View implements kvstore.ShardView.
func (sv *shardView) View(tableName string) (kvstore.PartView, error) {
	t, err := sv.store.lookup(tableName)
	if err != nil {
		return nil, err
	}
	if t.ubiquitous {
		return &ubiqPartView{table: t, part: sv.shard.part}, nil
	}
	if !coPlaced(t.group, sv.group) {
		return nil, fmt.Errorf("%w: %q is in group %s, agent runs in group %s",
			kvstore.ErrNotCoPlaced, tableName, t.group.id, sv.group.id)
	}
	return &partView{store: sv.store, table: t, shard: t.group.shards[sv.shard.part], tx: sv.tx}, nil
}

func coPlaced(a, b *group) bool {
	if a == b {
		return true
	}
	if a.parts != b.parts {
		return false
	}
	_, da := a.hasher.(codec.DefaultHasher)
	_, db := b.hasher.(codec.DefaultHasher)
	return da && db
}

// partView gives local access to one part of one table, read-through and
// write-buffered when inside a transaction.
type partView struct {
	store *Store
	table *table
	shard *shard
	tx    *txState
}

var _ kvstore.PartView = (*partView)(nil)

// Table implements kvstore.PartView.
func (pv *partView) Table() string { return pv.table.name }

// Part implements kvstore.PartView.
func (pv *partView) Part() int { return pv.shard.part }

// Get implements kvstore.PartView.
func (pv *partView) Get(key any) (any, bool, error) {
	pv.store.metrics.AddStoreGets(1)
	if pv.tx != nil {
		if w, ok := pv.tx.get(pv.table.name, key); ok {
			if w.deleted {
				return nil, false, nil
			}
			return w.value, true, nil
		}
	}
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	prim, err := pv.shard.primaryLocked()
	if err != nil {
		return nil, false, err
	}
	v, ok := prim.data[pv.table.name][key]
	return v, ok, nil
}

// Put implements kvstore.PartView.
func (pv *partView) Put(key, value any) error {
	pv.store.metrics.AddStorePuts(1)
	if pv.tx != nil {
		pv.tx.set(pv.table.name, key, value)
		return nil
	}
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	if _, err := pv.shard.primaryLocked(); err != nil {
		return err
	}
	for _, r := range pv.shard.replicas {
		if !r.alive {
			continue
		}
		items := r.data[pv.table.name]
		if items == nil {
			items = make(map[any]any)
			r.data[pv.table.name] = items
		}
		items[key] = value
	}
	return nil
}

// Delete implements kvstore.PartView.
func (pv *partView) Delete(key any) error {
	pv.store.metrics.AddStoreDeletes(1)
	if pv.tx != nil {
		pv.tx.del(pv.table.name, key)
		return nil
	}
	pv.shard.mu.Lock()
	defer pv.shard.mu.Unlock()
	if _, err := pv.shard.primaryLocked(); err != nil {
		return err
	}
	for _, r := range pv.shard.replicas {
		if r.alive {
			delete(r.data[pv.table.name], key)
		}
	}
	return nil
}

// Len implements kvstore.PartView. Inside a transaction it accounts for the
// uncommitted write-set.
func (pv *partView) Len() (int, error) {
	pv.shard.mu.Lock()
	prim, err := pv.shard.primaryLocked()
	if err != nil {
		pv.shard.mu.Unlock()
		return 0, err
	}
	items := prim.data[pv.table.name]
	n := len(items)
	if pv.tx != nil {
		for key, w := range pv.tx.writes[pv.table.name] {
			_, exists := items[key]
			switch {
			case w.deleted && exists:
				n--
			case !w.deleted && !exists:
				n++
			}
		}
	}
	pv.shard.mu.Unlock()
	return n, nil
}

// Enumerate implements kvstore.PartView.
func (pv *partView) Enumerate(fn kvstore.PairFunc) error {
	keys, err := pv.snapshotKeys(false)
	if err != nil {
		return err
	}
	return pv.visit(keys, fn)
}

// EnumerateOrdered implements kvstore.PartView.
func (pv *partView) EnumerateOrdered(fn kvstore.PairFunc) error {
	keys, err := pv.snapshotKeys(true)
	if err != nil {
		return err
	}
	return pv.visit(keys, fn)
}

func (pv *partView) snapshotKeys(ordered bool) ([]any, error) {
	pv.shard.mu.Lock()
	prim, err := pv.shard.primaryLocked()
	if err != nil {
		pv.shard.mu.Unlock()
		return nil, err
	}
	items := prim.data[pv.table.name]
	merged := make(map[any]any, len(items))
	for k := range items {
		merged[k] = struct{}{}
	}
	pv.shard.mu.Unlock()
	if pv.tx != nil {
		for key, w := range pv.tx.writes[pv.table.name] {
			if w.deleted {
				delete(merged, key)
			} else {
				merged[key] = struct{}{}
			}
		}
	}
	if ordered {
		return sortedKeys(merged), nil
	}
	keys := make([]any, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	return keys, nil
}

func (pv *partView) visit(keys []any, fn kvstore.PairFunc) error {
	for _, k := range keys {
		v, ok, err := pv.Get(k)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		stop, err := fn(k, v)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// ubiqShardView adapts a ubiquitous table for EnumerateParts.
type ubiqShardView struct {
	table *table
}

var _ kvstore.ShardView = (*ubiqShardView)(nil)

func (sv *ubiqShardView) Part() int { return 0 }

func (sv *ubiqShardView) View(tableName string) (kvstore.PartView, error) {
	if tableName != sv.table.name {
		return nil, fmt.Errorf("%w: %q from ubiquitous agent", kvstore.ErrNotCoPlaced, tableName)
	}
	return &ubiqPartView{table: sv.table, part: 0}, nil
}

// ubiqPartView is the local replica view of a ubiquitous table.
type ubiqPartView struct {
	table *table
	part  int
}

var _ kvstore.PartView = (*ubiqPartView)(nil)

func (uv *ubiqPartView) Table() string { return uv.table.name }
func (uv *ubiqPartView) Part() int     { return uv.part }

func (uv *ubiqPartView) Get(key any) (any, bool, error) {
	uv.table.ubiqMu.RLock()
	defer uv.table.ubiqMu.RUnlock()
	v, ok := uv.table.ubiq[key]
	return v, ok, nil
}

func (uv *ubiqPartView) Put(key, value any) error {
	uv.table.ubiqMu.Lock()
	defer uv.table.ubiqMu.Unlock()
	uv.table.ubiq[key] = value
	return nil
}

func (uv *ubiqPartView) Delete(key any) error {
	uv.table.ubiqMu.Lock()
	defer uv.table.ubiqMu.Unlock()
	delete(uv.table.ubiq, key)
	return nil
}

func (uv *ubiqPartView) Len() (int, error) {
	uv.table.ubiqMu.RLock()
	defer uv.table.ubiqMu.RUnlock()
	return len(uv.table.ubiq), nil
}

func (uv *ubiqPartView) Enumerate(fn kvstore.PairFunc) error {
	return uv.EnumerateOrdered(fn)
}

func (uv *ubiqPartView) EnumerateOrdered(fn kvstore.PairFunc) error {
	uv.table.ubiqMu.RLock()
	keys := sortedKeys(uv.table.ubiq)
	items := make(map[any]any, len(uv.table.ubiq))
	for k, v := range uv.table.ubiq {
		items[k] = v
	}
	uv.table.ubiqMu.RUnlock()
	for _, k := range keys {
		stop, err := fn(k, items[k])
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

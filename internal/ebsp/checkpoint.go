package ebsp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
)

// Checkpointing extends the paper's fault-tolerance outline (§IV-A) from
// replay of deterministic jobs to restartability of arbitrary synchronized
// jobs: at configurable barrier intervals the engine snapshots everything a
// barrier defines — the state tables, the undelivered spills, the aggregate
// results, and the step number — into checkpoint tables in the same store.
// A later Resume with an equivalent job specification restores the snapshot
// and continues from the step after the checkpoint.
//
// Checkpoints survive engine crashes because they live in the store; on a
// durable store (diskstore) they survive process restarts too.

// ErrNoCheckpoint is returned by Resume when no checkpoint exists for the
// job.
var ErrNoCheckpoint = errors.New("ebsp: no checkpoint for job")

// ErrCheckpointMismatch is returned by Resume (and automatic recovery) when
// the checkpoint does not match the job specification — name, step budget,
// or state table set. It wraps ErrBadJob, so existing errors.Is(err,
// ErrBadJob) checks keep matching.
var ErrCheckpointMismatch = fmt.Errorf("%w: checkpoint does not match the job specification", ErrBadJob)

// WithCheckpoints makes synchronized jobs snapshot their barrier state every
// `every` steps. 0 disables checkpointing (the default). No-sync jobs have
// no barriers and ignore the option.
func WithCheckpoints(every int) Option {
	return func(e *Engine) {
		if every >= 0 {
			e.checkpointEvery = every
		}
	}
}

// checkpointMeta is the snapshot's root record. JobName, MaxSteps, and
// TableHash identify the job specification that wrote the snapshot; Resume
// rejects a mismatching job with ErrCheckpointMismatch. (JobName doubles as
// the format marker: a legacy record decodes with JobName "" and skips the
// identity checks.)
type checkpointMeta struct {
	Step       int
	Pending    int64
	Aggregates map[string]any
	Tables     []string
	JobName    string
	MaxSteps   int
	TableHash  uint64
}

// tableSetHash fingerprints the job's state table set (order included).
func tableSetHash(names []string) uint64 {
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

func init() {
	codec.Register(checkpointMeta{})
}

// sealMeta encodes the meta record and appends a fnv64a checksum of the
// encoded bytes. The sealed form is what checkpoint() stores: a torn or
// partial write (a primary dying mid-checkpoint, a truncated value from a
// flaky transport) fails the checksum and is rejected before any decoding
// touches the garbage.
func sealMeta(meta checkpointMeta) ([]byte, error) {
	enc, err := codec.Encode(meta)
	if err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(enc)
	return h.Sum(enc), nil
}

// openMeta verifies the checksum trailer and decodes the meta record,
// returning ErrCheckpointMismatch when the bytes do not hash to their
// trailer.
func openMeta(sealed []byte) (checkpointMeta, error) {
	if len(sealed) < 8 {
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint meta truncated to %d bytes",
			ErrCheckpointMismatch, len(sealed))
	}
	body, sum := sealed[:len(sealed)-8], sealed[len(sealed)-8:]
	h := fnv.New64a()
	h.Write(body)
	if !bytes.Equal(h.Sum(nil), sum) {
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint meta checksum mismatch (torn write?)",
			ErrCheckpointMismatch)
	}
	raw, err := codec.Decode(body)
	if err != nil {
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint meta undecodable: %v", ErrCheckpointMismatch, err)
	}
	meta, ok := raw.(checkpointMeta)
	if !ok {
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint meta is a %T", ErrCheckpointMismatch, raw)
	}
	return meta, nil
}

// checkpointPrefix names a job's checkpoint tables; stable across runs so
// Resume can find them.
func checkpointPrefix(jobName string) string {
	return fmt.Sprintf("__ckpt.%s", jobName)
}

func ckptMetaTable(jobName string) string  { return checkpointPrefix(jobName) + ".meta" }
func ckptSpillTable(jobName string) string { return checkpointPrefix(jobName) + ".spills" }
func ckptStateTable(jobName string, tab int) string {
	return fmt.Sprintf("%s.state.%d", checkpointPrefix(jobName), tab)
}

// checkpoint snapshots the barrier state after step `step`.
func (run *jobRun) checkpoint(step int, pending int64) error {
	store := run.engine.store
	jobName := run.job.Name

	// State tables.
	for i, t := range run.stateTables {
		name := ckptStateTable(jobName, i)
		if err := recreateTable(store, name, run.placement.Name()); err != nil {
			return err
		}
		ckpt, _ := store.LookupTable(name)
		if err := copyTable(run, t, ckpt); err != nil {
			return fmt.Errorf("ebsp: checkpoint state table %q: %w", t.Name(), err)
		}
	}

	// Undelivered spills (the messages crossing the checkpointed barrier).
	spillName := ckptSpillTable(jobName)
	if err := recreateTable(store, spillName, run.placement.Name()); err != nil {
		return err
	}
	ckptSpills, _ := store.LookupTable(spillName)
	if err := copyTable(run, run.transport, ckptSpills); err != nil {
		return fmt.Errorf("ebsp: checkpoint spills: %w", err)
	}

	// Meta record last, so a complete meta implies a complete snapshot. On a
	// buffered store the state and spill writes must reach the medium before
	// the meta does, or a process kill could leave a meta that promises
	// missing data — hence the flush on either side of the meta write.
	if err := kvstore.Flush(store); err != nil {
		return fmt.Errorf("ebsp: flush checkpoint state: %w", err)
	}
	metaName := ckptMetaTable(jobName)
	if err := recreateTable(store, metaName, run.placement.Name()); err != nil {
		return err
	}
	meta, _ := store.LookupTable(metaName)
	aggs := make(map[string]any, len(run.aggPrev))
	for k, v := range run.aggPrev {
		aggs[k] = v
	}
	sealed, err := sealMeta(checkpointMeta{
		Step:       step,
		Pending:    pending,
		Aggregates: aggs,
		Tables:     run.stateNames,
		JobName:    jobName,
		MaxSteps:   run.job.MaxSteps,
		TableHash:  tableSetHash(run.stateNames),
	})
	if err != nil {
		return fmt.Errorf("ebsp: seal checkpoint meta: %w", err)
	}
	if err := run.engine.retryOp(jobName, -1, -1, func() error {
		return meta.Put("meta", sealed)
	}); err != nil {
		return err
	}
	return kvstore.Flush(store)
}

// dropCheckpoint removes a job's checkpoint tables (after successful
// completion).
func (run *jobRun) dropCheckpoint() {
	store := run.engine.store
	jobName := run.job.Name
	_ = store.DropTable(ckptMetaTable(jobName))
	_ = store.DropTable(ckptSpillTable(jobName))
	for i := range run.stateTables {
		_ = store.DropTable(ckptStateTable(jobName, i))
	}
}

// loadCheckpoint reads the job's checkpoint meta record and validates that
// the snapshot matches the job specification (name, step budget, state table
// set), returning ErrCheckpointMismatch (which wraps ErrBadJob) otherwise.
func (e *Engine) loadCheckpoint(job *Job) (checkpointMeta, error) {
	metaTab, ok := e.store.LookupTable(ckptMetaTable(job.Name))
	if !ok {
		return checkpointMeta{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, job.Name)
	}
	var rawMeta any
	var found bool
	err := e.retryOp(job.Name, -1, -1, func() error {
		var gerr error
		rawMeta, found, gerr = metaTab.Get("meta")
		return gerr
	})
	if err != nil {
		return checkpointMeta{}, err
	}
	if !found {
		return checkpointMeta{}, fmt.Errorf("%w: %q (incomplete snapshot)", ErrNoCheckpoint, job.Name)
	}
	var meta checkpointMeta
	switch rec := rawMeta.(type) {
	case []byte:
		meta, err = openMeta(rec)
		if err != nil {
			return checkpointMeta{}, err
		}
	case checkpointMeta:
		// Legacy record written before the checksum seal; accepted as-is.
		meta = rec
	default:
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint meta is a %T", ErrCheckpointMismatch, rawMeta)
	}
	if len(meta.Tables) != len(job.StateTables) {
		return checkpointMeta{}, fmt.Errorf("%w: checkpoint has %d state tables, job has %d",
			ErrCheckpointMismatch, len(meta.Tables), len(job.StateTables))
	}
	for i, name := range meta.Tables {
		if job.StateTables[i] != name {
			return checkpointMeta{}, fmt.Errorf("%w: checkpoint state table %d is %q, job has %q",
				ErrCheckpointMismatch, i, name, job.StateTables[i])
		}
	}
	if meta.JobName != "" { // legacy records predate the identity fields
		if meta.JobName != job.Name {
			return checkpointMeta{}, fmt.Errorf("%w: checkpoint belongs to job %q, not %q",
				ErrCheckpointMismatch, meta.JobName, job.Name)
		}
		if meta.MaxSteps != job.MaxSteps {
			return checkpointMeta{}, fmt.Errorf("%w: checkpoint was taken with MaxSteps %d, job has %d",
				ErrCheckpointMismatch, meta.MaxSteps, job.MaxSteps)
		}
		if meta.TableHash != tableSetHash(job.StateTables) {
			return checkpointMeta{}, fmt.Errorf("%w: state table set hash differs", ErrCheckpointMismatch)
		}
	}
	return meta, nil
}

// restoreCheckpoint resets the run's state tables, transport, and aggregates
// to the snapshot. The transport is cleared first so an in-run recovery
// discards the failed attempt's spills; on a fresh run (Resume) the clear is
// a no-op.
func (run *jobRun) restoreCheckpoint(meta checkpointMeta) error {
	e := run.engine
	jobName := run.job.Name
	for i, t := range run.stateTables {
		ckpt, ok := e.store.LookupTable(ckptStateTable(jobName, i))
		if !ok {
			return fmt.Errorf("%w: missing state snapshot %d", ErrNoCheckpoint, i)
		}
		if err := clearTable(run, t); err != nil {
			return err
		}
		if err := copyTable(run, ckpt, t); err != nil {
			return fmt.Errorf("ebsp: restore state table %q: %w", t.Name(), err)
		}
	}
	ckptSpills, ok := e.store.LookupTable(ckptSpillTable(jobName))
	if !ok {
		return fmt.Errorf("%w: missing spill snapshot", ErrNoCheckpoint)
	}
	if err := clearTable(run, run.transport); err != nil {
		return err
	}
	if err := copyTable(run, ckptSpills, run.transport); err != nil {
		return fmt.Errorf("ebsp: restore spills: %w", err)
	}
	run.aggPrev = make(map[string]any, len(meta.Aggregates))
	for k, v := range meta.Aggregates {
		run.aggPrev[k] = v
	}
	if run.aggResults != nil {
		for name, v := range run.aggPrev {
			name, v := name, v
			if err := e.retryOp(jobName, -1, -1, func() error { return run.aggResults.Put(name, v) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// Resume restarts a synchronized job from its most recent checkpoint: the
// state tables and undelivered messages are restored to the snapshot and
// execution continues from the following step. The job specification must be
// equivalent to the one originally run (same name, step budget, state
// tables, compute); a mismatch is rejected with ErrCheckpointMismatch.
// If an execution of the same job name is already in flight on this engine
// (a restart-recovery path racing a live run), Resume returns ErrJobBusy
// instead of restoring a snapshot underneath it.
func (e *Engine) Resume(job *Job) (*Result, error) {
	return e.ResumeContext(context.Background(), job)
}

// ResumeContext is Resume with cancellation, mirroring RunContext: the
// resumed job stops at the next barrier once ctx is done, and the context
// error is returned (wrapped).
func (e *Engine) ResumeContext(ctx context.Context, job *Job) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := job.validate(); err != nil {
		return nil, err
	}
	if err := e.acquireJob(job.Name); err != nil {
		return nil, err
	}
	defer e.releaseJob(job.Name)
	meta, err := e.loadCheckpoint(job)
	if err != nil {
		return nil, err
	}

	derived := planFor(job)
	strategy := derived
	if e.override != nil {
		strategy = e.override(derived).Clamp(derived)
	}
	strategy.Sync = true // checkpoints only exist for synchronized execution
	if strategy.FastRecovery {
		if _, ok := e.store.(kvstore.Transactional); !ok {
			strategy.FastRecovery = false
		}
	}
	run := &jobRun{
		engine:   e,
		job:      job,
		ctx:      ctx,
		strategy: strategy,
		aggPrev:  make(map[string]any),
		runID:    runSeq.Add(1),
	}
	run.setupTraceContext()
	defer run.cleanup()
	if err := run.setupTables(); err != nil {
		return nil, err
	}
	if fs, ok := e.store.(kvstore.FailureSensor); ok {
		run.sensor = fs
		run.sensedFailovers = fs.Failovers()
	}
	if err := run.restoreCheckpoint(meta); err != nil {
		return nil, err
	}
	if err := run.setupAggTables(); err != nil {
		return nil, err
	}
	res, err := run.syncLoop(meta.Step, meta.Pending)
	for reruns := 0; err != nil && run.autoRecoverable(err, reruns); reruns++ {
		res, err = run.recoverAndRerun(err)
	}
	if err != nil {
		return nil, err
	}
	res.Strategy = strategy
	res.Recoveries = int(run.recoveries.Load())
	if err := run.export(); err != nil {
		return nil, err
	}
	return res, nil
}

// recreateTable drops and recreates a table consistently partitioned with
// the placement table.
func recreateTable(store kvstore.Store, name, consistentWith string) error {
	if _, ok := store.LookupTable(name); ok {
		if err := store.DropTable(name); err != nil {
			return err
		}
	}
	_, err := store.CreateTable(name, kvstore.ConsistentWith(consistentWith))
	if err != nil {
		return fmt.Errorf("ebsp: create checkpoint table %q: %w", name, err)
	}
	return nil
}

// copyTable copies every pair from src to dst, part-locally where possible;
// individual puts retry transient failures when run is non-nil.
func copyTable(run *jobRun, src, dst kvstore.Table) error {
	return kvstore.EnumerateAll(src, func(k, v any) (bool, error) {
		if run == nil {
			return false, dst.Put(k, v)
		}
		return false, run.engine.retryOp(run.job.Name, -1, -1, func() error { return dst.Put(k, v) })
	})
}

// clearTable deletes every pair of a table; individual deletes retry
// transient failures when run is non-nil.
func clearTable(run *jobRun, t kvstore.Table) error {
	keys := make([]any, 0)
	if err := kvstore.EnumerateAll(t, func(k, _ any) (bool, error) {
		keys = append(keys, k)
		return false, nil
	}); err != nil {
		return err
	}
	sort.Slice(keys, func(i, j int) bool { return codec.CompareKeys(keys[i], keys[j]) < 0 })
	for _, k := range keys {
		k := k
		var err error
		if run == nil {
			err = t.Delete(k)
		} else {
			err = run.engine.retryOp(run.job.Name, -1, -1, func() error { return t.Delete(k) })
		}
		if err != nil {
			return err
		}
	}
	return nil
}

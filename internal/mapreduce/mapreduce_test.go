package mapreduce

import (
	"errors"
	"strings"
	"testing"

	"ripple/internal/ebsp"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

func newEngine(t *testing.T) *ebsp.Engine {
	t.Helper()
	store := memstore.New(memstore.WithParts(4))
	t.Cleanup(func() { _ = store.Close() })
	return ebsp.NewEngine(store)
}

func loadDocs(t *testing.T, e *ebsp.Engine, docs map[any]any) {
	t.Helper()
	tab, err := e.Store().CreateTable("docs")
	if err != nil {
		t.Fatal(err)
	}
	if err := kvstore.LoadMap(tab, docs); err != nil {
		t.Fatal(err)
	}
}

var wordCountJob = &Job{
	Name:   "wordcount",
	Input:  "docs",
	Output: "counts",
	Mapper: MapperFunc(func(_, value any, emit Emitter) error {
		for _, w := range strings.Fields(value.(string)) {
			emit(w, 1)
		}
		return nil
	}),
	Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
		total := 0
		for _, v := range values {
			total += v.(int)
		}
		emit(key, total)
		return nil
	}),
}

func TestWordCount(t *testing.T) {
	e := newEngine(t)
	loadDocs(t, e, map[any]any{
		1: "the quick brown fox",
		2: "the lazy dog",
		3: "the quick dog",
	})
	res, err := Run(e, wordCountJob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2 {
		t.Errorf("Steps = %d, want >= 2 (map + reduce)", res.Steps)
	}
	out, _ := e.Store().LookupTable("counts")
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	for w, n := range want {
		v, ok, _ := out.Get(w)
		if !ok || v != n {
			t.Errorf("count[%s] = %v, %v, want %d", w, v, ok, n)
		}
	}
	if sz, _ := out.Size(); sz != len(want) {
		t.Errorf("output size = %d, want %d", sz, len(want))
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	e := newEngine(t)
	loadDocs(t, e, map[any]any{
		1: "a a a a b",
		2: "b a a",
	})
	job := *wordCountJob
	job.Combiner = func(_, v1, v2 any) any { return v1.(int) + v2.(int) }
	if _, err := Run(e, &job); err != nil {
		t.Fatal(err)
	}
	out, _ := e.Store().LookupTable("counts")
	if v, _, _ := out.Get("a"); v != 6 {
		t.Errorf("a = %v, want 6", v)
	}
	if v, _, _ := out.Get("b"); v != 2 {
		t.Errorf("b = %v, want 2", v)
	}
}

func TestCrossKeyReduceEmit(t *testing.T) {
	// A reduce that emits under a different key than its own.
	e := newEngine(t)
	loadDocs(t, e, map[any]any{1: "x", 2: "y"})
	job := &Job{
		Name:   "crosskey",
		Input:  "docs",
		Output: "out",
		Mapper: MapperFunc(func(k, v any, emit Emitter) error {
			emit(k, v)
			return nil
		}),
		Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
			emit("merged:"+values[0].(string), key)
			return nil
		}),
	}
	if _, err := Run(e, job); err != nil {
		t.Fatal(err)
	}
	out, _ := e.Store().LookupTable("out")
	if v, ok, _ := out.Get("merged:x"); !ok || v != 1 {
		t.Errorf("merged:x = %v, %v", v, ok)
	}
	if v, ok, _ := out.Get("merged:y"); !ok || v != 2 {
		t.Errorf("merged:y = %v, %v", v, ok)
	}
}

func TestRunValidation(t *testing.T) {
	e := newEngine(t)
	cases := []*Job{
		{Name: "no-mapper", Input: "docs", Output: "o", Reducer: wordCountJob.Reducer},
		{Name: "no-reducer", Input: "docs", Output: "o", Mapper: wordCountJob.Mapper},
		{Name: "no-input", Output: "o", Mapper: wordCountJob.Mapper, Reducer: wordCountJob.Reducer},
		{Name: "no-output", Input: "docs", Mapper: wordCountJob.Mapper, Reducer: wordCountJob.Reducer},
	}
	for _, job := range cases {
		if _, err := Run(e, job); !errors.Is(err, ErrBadJob) {
			t.Errorf("%s: err = %v, want ErrBadJob", job.Name, err)
		}
	}
	// Missing input table is reported too.
	job := *wordCountJob
	if _, err := Run(e, &job); err == nil {
		t.Error("missing input table not reported")
	}
}

func TestMapErrorSurfaces(t *testing.T) {
	e := newEngine(t)
	loadDocs(t, e, map[any]any{1: "x"})
	job := &Job{
		Name:   "maperr",
		Input:  "docs",
		Output: "out",
		Mapper: MapperFunc(func(_, _ any, _ Emitter) error {
			return errors.New("map exploded")
		}),
		Reducer: wordCountJob.Reducer,
	}
	if _, err := Run(e, job); err == nil {
		t.Error("map error did not surface")
	}
}

// TestIteratedChained refines a dataset of counters: each iteration every
// key sends its value to the next key (mod n), and reduce sums what arrives.
func TestIteratedChained(t *testing.T) {
	e := newEngine(t)
	const n = 8
	tab, _ := e.Store().CreateTable("ring")
	for i := 0; i < n; i++ {
		_ = tab.Put(i, 1)
	}
	job := &IteratedJob{
		Name:  "ring",
		Table: "ring",
		Mapper: MapperFunc(func(k, v any, emit Emitter) error {
			emit((k.(int)+1)%n, v)
			return nil
		}),
		Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
			total := 0
			for _, v := range values {
				total += v.(int)
			}
			emit(key, total)
			return nil
		}),
		MaxIterations: 5,
	}
	sum, err := RunIterated(e, job)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Iterations != 5 {
		t.Errorf("Iterations = %d, want 5", sum.Iterations)
	}
	if sum.Steps != 10 {
		t.Errorf("Steps = %d, want 10 (two per iteration)", sum.Steps)
	}
	// Mass conservation: total value stays n.
	total := 0
	dump, _ := kvstore.Dump(tab)
	for _, v := range dump {
		total += v.(int)
	}
	if total != n {
		t.Errorf("total mass = %d, want %d", total, n)
	}
}

func TestIteratedFreshMatchesChained(t *testing.T) {
	build := func() *IteratedJob {
		return &IteratedJob{
			Name:  "cmp",
			Table: "data",
			Mapper: MapperFunc(func(k, v any, emit Emitter) error {
				emit(k, v.(int)+1) // each iteration increments every value
				return nil
			}),
			Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
				emit(key, values[0])
				return nil
			}),
			MaxIterations: 4,
		}
	}
	run := func(fresh bool) map[any]any {
		e := newEngine(t)
		tab, _ := e.Store().CreateTable("data")
		for i := 0; i < 10; i++ {
			_ = tab.Put(i, 0)
		}
		job := build()
		job.FreshJobPerIteration = fresh
		if _, err := RunIterated(e, job); err != nil {
			t.Fatal(err)
		}
		dump, _ := kvstore.Dump(tab)
		return dump
	}
	chained := run(false)
	fresh := run(true)
	for k, v := range chained {
		if fresh[k] != v {
			t.Errorf("key %v: chained %v, fresh %v", k, v, fresh[k])
		}
		if v != 4 {
			t.Errorf("key %v = %v, want 4", k, v)
		}
	}
}

func TestIteratedConvergence(t *testing.T) {
	e := newEngine(t)
	tab, _ := e.Store().CreateTable("conv")
	for i := 0; i < 6; i++ {
		_ = tab.Put(i, 10)
	}
	job := &IteratedJob{
		Name:  "conv",
		Table: "conv",
		Mapper: MapperFunc(func(k, v any, emit Emitter) error {
			emit(k, v.(int)/2)
			return nil
		}),
		Reducer: ReducerFunc(func(key any, values []any, emit Emitter) error {
			emit(key, values[0])
			return nil
		}),
		MaxIterations:        100,
		FreshJobPerIteration: true,
		Converged: func(_ int, _ map[string]any) bool {
			dump, _ := kvstore.Dump(tab)
			for _, v := range dump {
				if v.(int) != 0 {
					return false
				}
			}
			return true
		},
	}
	sum, err := RunIterated(e, job)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged {
		t.Error("never converged")
	}
	// 10 -> 5 -> 2 -> 1 -> 0: four iterations.
	if sum.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", sum.Iterations)
	}
}

func TestIteratedValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := RunIterated(e, &IteratedJob{
		Name:   "bad",
		Table:  "t",
		Mapper: wordCountJob.Mapper,
	}); !errors.Is(err, ErrBadJob) {
		t.Errorf("err = %v", err)
	}
	if _, err := RunIterated(e, &IteratedJob{
		Name:    "unbounded",
		Table:   "t",
		Mapper:  wordCountJob.Mapper,
		Reducer: wordCountJob.Reducer,
	}); !errors.Is(err, ErrBadJob) {
		t.Errorf("unbounded err = %v", err)
	}
}

package ebsp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ripple/internal/gridstore"
	"ripple/internal/kvstore"
	"ripple/internal/memstore"
)

func TestPlanForDerivations(t *testing.T) {
	cases := []struct {
		name string
		job  Job
		want Strategy
	}{
		{
			"default job",
			Job{},
			Strategy{Sort: false, Collect: true, RunAnywhere: false, Sync: true},
		},
		{
			"needs order",
			Job{Properties: Properties{NeedsOrder: true}},
			Strategy{Sort: true, Collect: true, Sync: true},
		},
		{
			"no-collect",
			Job{Properties: Properties{OneMsg: true, NoContinue: true}},
			Strategy{Collect: false, Sync: true},
		},
		{
			"run anywhere",
			Job{Properties: Properties{OneMsg: true, NoContinue: true, RareState: true}},
			Strategy{Collect: false, RunAnywhere: true, Sync: true},
		},
		{
			"no-sync via no-collect and no-ss-order",
			Job{Properties: Properties{OneMsg: true, NoContinue: true, NoStepOrder: true}},
			Strategy{Collect: false, Sync: false},
		},
		{
			"no-sync via incremental",
			Job{Properties: Properties{Incremental: true}},
			Strategy{Collect: true, Sync: false},
		},
		{
			"incremental but has aggregators keeps sync",
			Job{
				Properties:  Properties{Incremental: true},
				Aggregators: map[string]Aggregator{"x": IntSum{}},
			},
			Strategy{Collect: true, Sync: true},
		},
		{
			"incremental but has aborter keeps sync",
			Job{
				Properties: Properties{Incremental: true},
				Aborter:    AborterFunc(func(int, map[string]any) bool { return false }),
			},
			Strategy{Collect: true, Sync: true},
		},
		{
			"deterministic enables fast recovery",
			Job{Properties: Properties{Deterministic: true}},
			Strategy{Collect: true, Sync: true, FastRecovery: true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := planFor(&c.job); got != c.want {
				t.Errorf("planFor = %+v, want %+v", got, c.want)
			}
		})
	}
}

func TestClampOnlyConservative(t *testing.T) {
	derived := Strategy{Sort: false, Collect: false, RunAnywhere: true, Sync: false, FastRecovery: true}
	// An override may add sort/collect/sync and drop run-anywhere/recovery.
	over := Strategy{Sort: true, Collect: true, RunAnywhere: false, Sync: true, FastRecovery: false}
	if got := over.Clamp(derived); got != over {
		t.Errorf("conservative override clamped to %+v", got)
	}
	// The unsafe directions are reverted.
	derived2 := Strategy{Sort: true, Collect: true, RunAnywhere: false, Sync: true, FastRecovery: false}
	unsafe := Strategy{Sort: false, Collect: false, RunAnywhere: true, Sync: false, FastRecovery: true}
	if got := unsafe.Clamp(derived2); got != derived2 {
		t.Errorf("unsafe override not clamped: %+v", got)
	}
}

// forwardOnce forwards a message one hop then stops; safe for no-collect.
type forwardOnce struct {
	hops int
}

func (f *forwardOnce) Compute(ctx *Context) bool {
	for _, m := range ctx.InputMessages() {
		n := m.(int)
		ctx.WriteState(0, n)
		if n < f.hops {
			ctx.Send(ctx.Key().(int)+1, n+1)
		}
	}
	return false
}

func TestNoCollectPathCorrect(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "nocollect",
		StateTables: []string{"nc_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true},
		Compute:     &forwardOnce{hops: 8},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Collect {
		t.Error("collect not disabled for one-msg + no-continue job")
	}
	tab, _ := e.Store().LookupTable("nc_state")
	for i := 0; i <= 8; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
}

func TestRunAnywherePathCorrect(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "runanywhere",
		StateTables: []string{"ra_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true, RareState: true},
		Compute:     &forwardOnce{hops: 12},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.RunAnywhere {
		t.Fatal("run-anywhere not selected")
	}
	tab, _ := e.Store().LookupTable("ra_state")
	for i := 0; i <= 12; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
}

func TestStrategyOverrideDisablesRunAnywhere(t *testing.T) {
	e := newEngine(t, WithStrategyOverride(func(s Strategy) Strategy {
		s.RunAnywhere = false
		return s
	}))
	job := &Job{
		Name:        "ra-off",
		StateTables: []string{"rao_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true, RareState: true},
		Compute:     &forwardOnce{hops: 4},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.RunAnywhere {
		t.Error("override did not disable run-anywhere")
	}
}

// incrementalChain is a no-sync-eligible chain job: it tolerates any message
// grouping (each message is independent).
type incrementalChain struct {
	hops int
}

func (f *incrementalChain) Compute(ctx *Context) bool {
	for _, m := range ctx.InputMessages() {
		n := m.(int)
		ctx.WriteState(0, n)
		if n < f.hops {
			ctx.Send(ctx.Key().(int)+1, n+1)
		}
	}
	return false
}

func TestNoSyncExecution(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "nosync",
		StateTables: []string{"ns_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &incrementalChain{hops: 20},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Sync {
		t.Fatal("no-sync not selected for incremental job")
	}
	if res.Steps != 0 {
		t.Errorf("Steps = %d, want 0 (no steps without barriers)", res.Steps)
	}
	tab, _ := e.Store().LookupTable("ns_state")
	for i := 0; i <= 20; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i {
			t.Errorf("state[%d] = %v, %v", i, v, ok)
		}
	}
}

func TestNoSyncMatchesSyncResults(t *testing.T) {
	// The same incremental job run with and without barriers must produce
	// identical final state.
	build := func(tabName string) *Job {
		return &Job{
			Name:        "equiv-" + tabName,
			StateTables: []string{tabName},
			Properties:  Properties{Incremental: true},
			Compute: ComputeFunc(func(ctx *Context) bool {
				for _, m := range ctx.InputMessages() {
					n := m.(int)
					cur := 0
					if v, ok := ctx.ReadState(0); ok {
						cur = v.(int)
					}
					ctx.WriteState(0, cur+n)
					if n > 1 {
						// Split the value across two children.
						k := ctx.Key().(int)
						ctx.Send(2*k+1, n/2)
						ctx.Send(2*k+2, n-n/2)
					}
				}
				return false
			}),
			Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 64}}}},
		}
	}

	eNoSync := newEngine(t)
	resNS, err := eNoSync.Run(build("eq_state"))
	if err != nil {
		t.Fatal(err)
	}
	if resNS.Strategy.Sync {
		t.Fatal("expected no-sync")
	}

	eSync := newEngine(t, WithStrategyOverride(func(s Strategy) Strategy {
		s.Sync = true
		return s
	}))
	resS, err := eSync.Run(build("eq_state"))
	if err != nil {
		t.Fatal(err)
	}
	if !resS.Strategy.Sync {
		t.Fatal("override did not force sync")
	}

	tabNS, _ := eNoSync.Store().LookupTable("eq_state")
	tabS, _ := eSync.Store().LookupTable("eq_state")
	dumpNS, _ := kvstore.Dump(tabNS)
	dumpS, _ := kvstore.Dump(tabS)
	if len(dumpNS) != len(dumpS) {
		t.Fatalf("state sizes differ: %d vs %d", len(dumpNS), len(dumpS))
	}
	for k, v := range dumpS {
		if dumpNS[k] != v {
			t.Errorf("key %v: nosync %v, sync %v", k, dumpNS[k], v)
		}
	}
}

func TestNoSyncDirectOutput(t *testing.T) {
	e := newEngine(t)
	out := &CollectExporter{}
	job := &Job{
		Name:         "nosync-direct",
		StateTables:  []string{"nsd_state"},
		Properties:   Properties{Incremental: true},
		DirectOutput: out,
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, m := range ctx.InputMessages() {
				ctx.DirectOutput(ctx.Key(), m)
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
			{Key: 1, Message: "a"}, {Key: 2, Message: "b"},
		}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Sync {
		t.Fatal("expected no-sync")
	}
	pairs := out.Pairs()
	if len(pairs) != 2 || pairs[1] != "a" || pairs[2] != "b" {
		t.Errorf("direct output = %v", pairs)
	}
}

func TestNoSyncCreateState(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "nosync-create",
		StateTables: []string{"nsc_state"},
		Properties:  Properties{Incremental: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			for range ctx.InputMessages() {
				ctx.CreateState(0, 777, "made")
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 1, Message: "go"}}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Store().LookupTable("nsc_state")
	if v, ok, _ := tab.Get(777); !ok || v != "made" {
		t.Errorf("created state = %v, %v", v, ok)
	}
}

func TestNoSyncComputeErrorPropagates(t *testing.T) {
	e := newEngine(t)
	job := &Job{
		Name:        "nosync-panic",
		StateTables: []string{"nsp_state"},
		Properties:  Properties{Incremental: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			panic("kaboom")
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 1, Message: "go"}}}},
	}
	if _, err := e.Run(job); err == nil {
		t.Error("panicking no-sync compute returned nil error")
	}
}

func TestFastRecoveryReplaysFailedShard(t *testing.T) {
	store := gridstore.New(gridstore.WithParts(4), gridstore.WithReplicas(2))
	t.Cleanup(func() { _ = store.Close() })
	e := NewEngine(store)

	var failOnce sync.Once
	var sawFailure atomic.Bool
	job := &Job{
		Name:        "recover",
		StateTables: []string{"rc_state"},
		Properties:  Properties{Deterministic: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if ctx.StepNum() == 2 {
					// Kill this shard's primary mid-step, exactly once. The
					// step's transaction must roll back and be replayed.
					failOnce.Do(func() {
						tab, _ := store.LookupTable("rc_state")
						part := tab.PartOf(ctx.Key())
						if err := store.FailPrimary("rc_state", part); err != nil {
							t.Errorf("FailPrimary: %v", err)
						}
						sawFailure.Store(true)
					})
				}
				if n < 6 {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.FastRecovery {
		t.Fatal("fast recovery not selected")
	}
	if !sawFailure.Load() {
		t.Fatal("failure was never injected")
	}
	if res.Recoveries < 1 {
		t.Errorf("Recoveries = %d, want >= 1", res.Recoveries)
	}
	tab, _ := store.LookupTable("rc_state")
	for i := 0; i <= 6; i++ {
		if v, ok, _ := tab.Get(i); !ok || v != i {
			t.Errorf("state[%d] = %v, %v (lost across failover)", i, v, ok)
		}
	}
}

func TestFastRecoveryFallsBackWithoutTransactions(t *testing.T) {
	// memstore is not Transactional: deterministic jobs run plain.
	e := NewEngine(memstore.New())
	job := &Job{
		Name:        "no-tx",
		StateTables: []string{"ntx_state"},
		Properties:  Properties{Deterministic: true},
		Compute:     ComputeFunc(func(ctx *Context) bool { return false }),
		Loaders:     []Loader{&EnableLoader{Keys: []any{1}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.FastRecovery {
		t.Error("fast recovery selected on a non-transactional store")
	}
}

func TestCollectVsNoCollectEquivalence(t *testing.T) {
	// The same one-msg/no-continue job with collect forced on must produce
	// identical state to the no-collect run.
	build := func(tab string) *Job {
		return &Job{
			Name:        "cnc-" + tab,
			StateTables: []string{tab},
			Properties:  Properties{OneMsg: true, NoContinue: true},
			Compute:     &forwardOnce{hops: 9},
			Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
		}
	}
	e1 := newEngine(t)
	if _, err := e1.Run(build("c1")); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, WithStrategyOverride(func(s Strategy) Strategy {
		s.Collect = true
		return s
	}))
	if _, err := e2.Run(build("c1")); err != nil {
		t.Fatal(err)
	}
	t1, _ := e1.Store().LookupTable("c1")
	t2, _ := e2.Store().LookupTable("c1")
	d1, _ := kvstore.Dump(t1)
	d2, _ := kvstore.Dump(t2)
	if len(d1) != len(d2) {
		t.Fatalf("sizes differ: %d vs %d", len(d1), len(d2))
	}
	for k, v := range d1 {
		if d2[k] != v {
			t.Errorf("key %v: %v vs %v", k, v, d2[k])
		}
	}
}

func TestConsecutiveRunsOnOneEngine(t *testing.T) {
	e := newEngine(t)
	for i := 0; i < 3; i++ {
		job := &Job{
			Name:        "again",
			StateTables: []string{"again_state"},
			Compute: ComputeFunc(func(ctx *Context) bool {
				cur := 0
				if v, ok := ctx.ReadState(0); ok {
					cur = v.(int)
				}
				ctx.WriteState(0, cur+1)
				return false
			}),
			Loaders: []Loader{&EnableLoader{Keys: []any{1}}},
		}
		if _, err := e.Run(job); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	tab, _ := e.Store().LookupTable("again_state")
	if v, _, _ := tab.Get(1); v != 3 {
		t.Errorf("state accumulates across runs: %v, want 3", v)
	}
}

func TestNoSyncIneligibleErrorType(t *testing.T) {
	// ErrNoSyncIneligible is part of the public error surface even though
	// Clamp prevents the engine from reaching an unsafe state internally.
	if ErrNoSyncIneligible == nil || !errors.Is(ErrNoSyncIneligible, ErrNoSyncIneligible) {
		t.Error("ErrNoSyncIneligible malformed")
	}
}

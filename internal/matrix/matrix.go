// Package matrix provides the dense-matrix arithmetic and block
// decomposition underlying the SUMMA evaluation (paper §V-B): matrices are
// decomposed into an M×N grid of blocks; block products are computed locally
// and accumulated into the running total for C.
package matrix

import (
	"fmt"
	"math"
	"math/rand"

	"ripple/internal/codec"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

func init() {
	codec.Register(Dense{})
}

// New creates a zero matrix.
func New(rows, cols int) Dense {
	return Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random creates a matrix of uniform [0,1) entries.
func Random(rng *rand.Rand, rows, cols int) Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns the (r, c) entry.
func (m Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the (r, c) entry.
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// IsZero reports whether the matrix has no allocated data.
func (m Dense) IsZero() bool { return m.Rows == 0 && m.Cols == 0 }

// Clone returns a deep copy.
func (m Dense) Clone() Dense {
	out := Dense{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Mul returns m × b.
func (m Dense) Mul(b Dense) (Dense, error) {
	if m.Cols != b.Rows {
		return Dense{}, fmt.Errorf("matrix: %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// AddInPlace accumulates b into m.
func (m *Dense) AddInPlace(b Dense) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return fmt.Errorf("matrix: add %dx%d + %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return nil
}

// EqualWithin reports whether two matrices agree entrywise within eps.
func (m Dense) EqualWithin(b Dense, eps float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > eps {
			return false
		}
	}
	return true
}

// Grid is an M×N grid of blocks decomposing one matrix.
type Grid struct {
	M, N   int // grid dimensions
	Blocks [][]Dense
}

// Partition splits m into a gridRows×gridCols grid of blocks; row and column
// remainders go to the last blocks.
func Partition(m Dense, gridRows, gridCols int) (*Grid, error) {
	if gridRows <= 0 || gridCols <= 0 || gridRows > m.Rows || gridCols > m.Cols {
		return nil, fmt.Errorf("matrix: partition %dx%d into %dx%d blocks",
			m.Rows, m.Cols, gridRows, gridCols)
	}
	g := &Grid{M: gridRows, N: gridCols, Blocks: make([][]Dense, gridRows)}
	rowStep := m.Rows / gridRows
	colStep := m.Cols / gridCols
	for i := 0; i < gridRows; i++ {
		g.Blocks[i] = make([]Dense, gridCols)
		r0 := i * rowStep
		r1 := r0 + rowStep
		if i == gridRows-1 {
			r1 = m.Rows
		}
		for j := 0; j < gridCols; j++ {
			c0 := j * colStep
			c1 := c0 + colStep
			if j == gridCols-1 {
				c1 = m.Cols
			}
			blk := New(r1-r0, c1-c0)
			for r := r0; r < r1; r++ {
				copy(blk.Data[(r-r0)*blk.Cols:(r-r0+1)*blk.Cols], m.Data[r*m.Cols+c0:r*m.Cols+c1])
			}
			g.Blocks[i][j] = blk
		}
	}
	return g, nil
}

// Assemble reverses Partition.
func (g *Grid) Assemble() Dense {
	rows, cols := 0, 0
	for i := 0; i < g.M; i++ {
		rows += g.Blocks[i][0].Rows
	}
	for j := 0; j < g.N; j++ {
		cols += g.Blocks[0][j].Cols
	}
	out := New(rows, cols)
	r0 := 0
	for i := 0; i < g.M; i++ {
		c0 := 0
		for j := 0; j < g.N; j++ {
			blk := g.Blocks[i][j]
			for r := 0; r < blk.Rows; r++ {
				copy(out.Data[(r0+r)*cols+c0:(r0+r)*cols+c0+blk.Cols],
					blk.Data[r*blk.Cols:(r+1)*blk.Cols])
			}
			c0 += blk.Cols
		}
		r0 += g.Blocks[i][0].Rows
	}
	return out
}

package ebsp

import (
	"fmt"
	"log/slog"

	"ripple/internal/trace"
)

// Structured-logging support. The engine never logs through a nil logger:
// when none is attached, scoped loggers collapse to slog.DiscardHandler so
// call sites stay unconditional. Scoped loggers carry the IDs needed to
// join log lines against span dumps: the job logger carries job + trace,
// and debug-level part loggers add step/part/span.

var discardLog = slog.New(slog.DiscardHandler)

// jobLogger derives the job-scoped logger: job name plus, for sampled
// runs, the trace ID in the same zero-padded hex form the lineage tooling
// prints.
func (e *Engine) jobLogger(job string, traceID uint64) *slog.Logger {
	if e.logger == nil {
		return discardLog
	}
	l := e.logger.With("job", job)
	if traceID != 0 {
		l = l.With("trace", hexID(traceID))
	}
	return l
}

// partLogger derives a (step, part)-scoped logger carrying the execution's
// span ID. Callers should gate derivation on debugEnabled to keep the
// allocation off the default path.
func (run *jobRun) partLogger(step, part int) *slog.Logger {
	l := run.log.With("step", step, "part", part)
	if run.sampled {
		l = l.With("span", hexID(trace.SpanID(run.traceID, step, part)))
	}
	return l
}

// debugEnabled reports whether debug-level lines would be emitted, so hot
// paths can skip scoped-logger derivation entirely.
func (run *jobRun) debugEnabled() bool {
	return run.log.Enabled(run.ctx, slog.LevelDebug)
}

func hexID(id uint64) string { return fmt.Sprintf("%016x", id) }

package graph

import (
	"fmt"
	"math"

	"ripple/internal/ebsp"
)

// Ready-made vertex programs for common graph analytics, usable directly or
// as templates. Each returns a Spec ready for Run.

// MaxValue labels every vertex with the maximum int Value in its connected
// component (the classic Pregel example).
func MaxValue(vertexTable string) *Spec {
	return &Spec{
		Name:        "graph.maxvalue",
		VertexTable: vertexTable,
		Program: ProgramFunc(func(ctx *VertexContext) error {
			cur, ok := ctx.Value().(int)
			if !ok {
				return fmt.Errorf("graph: MaxValue needs int values, got %T", ctx.Value())
			}
			changed := ctx.Superstep() == 1
			for _, m := range ctx.Messages() {
				if v := m.(int); v > cur {
					cur = v
					changed = true
				}
			}
			if changed {
				ctx.SetValue(cur)
				ctx.SendToNeighbors(cur)
			}
			ctx.VoteToHalt()
			return nil
		}),
	}
}

// connectedComponentsCombiner keeps only the smallest candidate label.
type minIntCombiner struct{}

// CombineMessages implements ebsp.MessageCombiner.
func (minIntCombiner) CombineMessages(_, a, b any) any {
	if a.(int) <= b.(int) {
		return a
	}
	return b
}

// ConnectedComponents labels every vertex (int IDs) with the smallest vertex
// ID in its weakly connected component, written to the vertex Value.
func ConnectedComponents(vertexTable string) *Spec {
	return &Spec{
		Name:        "graph.cc",
		VertexTable: vertexTable,
		Combiner:    minIntCombiner{},
		Program: ProgramFunc(func(ctx *VertexContext) error {
			id, ok := ctx.ID().(int)
			if !ok {
				return fmt.Errorf("graph: ConnectedComponents needs int IDs, got %T", ctx.ID())
			}
			label := id
			if ctx.Superstep() > 1 {
				label = ctx.Value().(int)
			}
			changed := ctx.Superstep() == 1
			for _, m := range ctx.Messages() {
				if v := m.(int); v < label {
					label = v
					changed = true
				}
			}
			if changed {
				ctx.SetValue(label)
				ctx.SendToNeighbors(label)
			}
			ctx.VoteToHalt()
			return nil
		}),
	}
}

// ShortestPathsInf is the "unreachable" distance used by ShortestPaths.
const ShortestPathsInf = int32(math.MaxInt32 / 2)

// ShortestPaths computes hop distances from a source vertex; vertex Values
// must be int32 distances initialized to ShortestPathsInf (0 at the source).
func ShortestPaths(vertexTable string, source any) *Spec {
	return &Spec{
		Name:        "graph.sssp",
		VertexTable: vertexTable,
		Combiner:    minInt32Combiner{},
		Program: ProgramFunc(func(ctx *VertexContext) error {
			dist, ok := ctx.Value().(int32)
			if !ok {
				return fmt.Errorf("graph: ShortestPaths needs int32 values, got %T", ctx.Value())
			}
			improved := ctx.Superstep() == 1 && ctx.ID() == source
			if improved && dist != 0 {
				dist = 0
			}
			for _, m := range ctx.Messages() {
				if nd := m.(int32); nd < dist {
					dist = nd
					improved = true
				}
			}
			if improved {
				ctx.SetValue(dist)
				ctx.SendToNeighbors(dist + 1)
			}
			ctx.VoteToHalt()
			return nil
		}),
	}
}

type minInt32Combiner struct{}

// CombineMessages implements ebsp.MessageCombiner.
func (minInt32Combiner) CombineMessages(_, a, b any) any {
	if a.(int32) <= b.(int32) {
		return a
	}
	return b
}

// PageRankSpec computes PageRank over the graph layer: vertex Values must be
// float64 ranks initialized to 1/|V|. Dangling mass is redistributed through
// an aggregator, matching the §V-A equations.
func PageRankSpec(vertexTable string, numVertices, iterations int, damping float64) *Spec {
	const sinkAgg = "graph.pagerank.sink"
	n := float64(numVertices)
	return &Spec{
		Name:          "graph.pagerank",
		VertexTable:   vertexTable,
		MaxSupersteps: iterations,
		Aggregators:   map[string]ebsp.Aggregator{sinkAgg: ebsp.Float64Sum{}},
		Combiner:      sumFloat64Combiner{},
		Program: ProgramFunc(func(ctx *VertexContext) error {
			rank, ok := ctx.Value().(float64)
			if !ok {
				return fmt.Errorf("graph: PageRank needs float64 values, got %T", ctx.Value())
			}
			if ctx.Superstep() > 1 {
				contrib := 0.0
				for _, m := range ctx.Messages() {
					contrib += m.(float64)
				}
				sink := 0.0
				if v, ok := ctx.AggregateResult(sinkAgg).(float64); ok {
					sink = v
				}
				rank = (1-damping)/n + damping*(contrib+sink)
				ctx.SetValue(rank)
			}
			if ctx.Superstep() >= iterations {
				ctx.VoteToHalt()
				return nil
			}
			if deg := len(ctx.Edges()); deg == 0 {
				ctx.AggregateValue(sinkAgg, rank/n)
			} else {
				ctx.SendToNeighbors(rank / float64(deg))
			}
			return nil
		}),
	}
}

type sumFloat64Combiner struct{}

// CombineMessages implements ebsp.MessageCombiner.
func (sumFloat64Combiner) CombineMessages(_, a, b any) any {
	return a.(float64) + b.(float64)
}

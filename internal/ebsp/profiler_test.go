package ebsp

import (
	"testing"
	"time"

	"ripple/internal/metrics"
	"ripple/internal/profile"
)

func TestProfilerSyncRecordsMatchComputeHistogram(t *testing.T) {
	m := &metrics.Collector{}
	rec := profile.New(1024)
	e := newEngine(t, WithMetrics(m), WithProfiler(rec))
	job := &Job{
		Name:        "profchain",
		StateTables: []string{"profchain_state"},
		Compute:     &chainCompute{limit: 10},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	snap := rec.Snapshot()
	// One record per (step, part): the store has 4 parts.
	if want := res.Steps * 4; len(snap) != want {
		t.Fatalf("records = %d, want %d (steps %d x 4 parts)", len(snap), want, res.Steps)
	}
	seen := make(map[[2]int]bool)
	var computeSum, msgsIn int64
	for _, p := range snap {
		if p.Job != "profchain" {
			t.Fatalf("record for wrong job %q", p.Job)
		}
		if p.Step < 1 || p.Step > res.Steps || p.Part < 0 || p.Part > 3 {
			t.Fatalf("record out of range: %+v", p)
		}
		if seen[[2]int{p.Step, p.Part}] {
			t.Fatalf("duplicate record for step %d part %d", p.Step, p.Part)
		}
		seen[[2]int{p.Step, p.Part}] = true
		computeSum += p.ComputeNS
		msgsIn += p.MsgsIn
	}

	// The profiler's per-part compute spans are the same measurements the
	// part_compute histogram observes; their totals must agree within 10%.
	histSum := m.PartComputes().Sum()
	if histSum == 0 {
		t.Fatal("part_compute histogram empty")
	}
	diff := computeSum - histSum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.10*float64(histSum) {
		t.Errorf("profiler compute sum %d vs histogram sum %d: diff > 10%%", computeSum, histSum)
	}

	// The chain delivers one message per step.
	if msgsIn != int64(res.Steps) {
		t.Errorf("msgs_in total = %d, want %d", msgsIn, res.Steps)
	}

	// Store puts must be attributed: the chain writes state once per step.
	var puts int64
	for _, p := range snap {
		puts += p.StorePuts
	}
	if puts < int64(res.Steps) {
		t.Errorf("store_puts total = %d, want >= %d", puts, res.Steps)
	}
}

func TestProfilerFindsDeliberateStraggler(t *testing.T) {
	rec := profile.New(1024)
	m := &metrics.Collector{}
	e := newEngine(t, WithMetrics(m), WithProfiler(rec))
	const slowKey = 3
	job := &Job{
		Name:        "skewed",
		StateTables: []string{"skewed_state"},
		Compute: ComputeFunc(func(ctx *Context) bool {
			if ctx.Key().(int) == slowKey {
				time.Sleep(2 * time.Millisecond) // deliberate skew
			}
			for _, msg := range ctx.InputMessages() {
				if n := msg.(int); n < 5 {
					ctx.Send(ctx.Key(), n+1)
				}
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{
			{Key: 0, Message: 0}, {Key: 1, Message: 0}, {Key: 2, Message: 0}, {Key: slowKey, Message: 0},
		}}},
	}
	if _, err := e.Run(job); err != nil {
		t.Fatal(err)
	}
	tab, ok := e.Store().LookupTable("skewed_state")
	if !ok {
		t.Fatal("state table missing")
	}
	wantPart := tab.PartOf(slowKey)

	rep := profile.AnalyzeRecorder(rec, 5)
	top, ok := rep.TopStraggler()
	if !ok {
		t.Fatal("no straggler ranking")
	}
	if top.Part != wantPart {
		t.Errorf("top straggler = part %d, want %d (home of slow key)", top.Part, wantPart)
	}
	if rep.MaxSkewRatio < 2 {
		t.Errorf("max skew ratio = %v, want >= 2 with a sleeping part", rep.MaxSkewRatio)
	}
	// The live gauges must reflect the skew too.
	if got := m.StragglerPart().Load(); got != int64(wantPart) {
		t.Errorf("straggler gauge = %d, want %d", got, wantPart)
	}
	if m.StepSkewRatio().Load() < 2 {
		t.Errorf("skew gauge = %v, want >= 2", m.StepSkewRatio().Load())
	}
	// And the hot-key ranking must surface the slow key's traffic.
	if keys := rec.HotKeys(10); len(keys) == 0 {
		t.Error("no hot keys observed")
	}
}

func TestProfilerNoSyncRecords(t *testing.T) {
	rec := profile.New(1024)
	e := newEngine(t, WithProfiler(rec))
	job := &Job{
		Name:        "profnosync",
		StateTables: []string{"profnosync_state"},
		Properties:  Properties{Incremental: true},
		Compute:     &chainCompute{limit: 20},
		Loaders:     []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.Sync {
		t.Fatal("job should have run no-sync")
	}
	snap := rec.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no records from no-sync run")
	}
	parts := make(map[int]bool)
	var delivered int64
	for _, p := range snap {
		if p.Step != 0 {
			t.Fatalf("no-sync record has step %d, want 0", p.Step)
		}
		if p.QueueWaitNS <= 0 {
			t.Errorf("part %d record has no queue wait", p.Part)
		}
		parts[p.Part] = true
		delivered += p.MsgsIn
	}
	if len(parts) != 4 {
		t.Errorf("records cover %d parts, want 4", len(parts))
	}
	if delivered < 21 {
		t.Errorf("delivered = %d, want >= 21 (chain of 21 messages)", delivered)
	}
	rep := profile.AnalyzeRecorder(rec, 5)
	if rep.NoSyncParts != len(snap) {
		t.Errorf("NoSyncParts = %d, want %d", rep.NoSyncParts, len(snap))
	}
}

func TestProfilerRunAnywhereRecordsWorkerSlots(t *testing.T) {
	rec := profile.New(1024)
	e := newEngine(t, WithProfiler(rec))
	job := &Job{
		Name:        "profsteal",
		StateTables: []string{"profsteal_state"},
		Properties:  Properties{OneMsg: true, NoContinue: true, RareState: true},
		Compute: ComputeFunc(func(ctx *Context) bool {
			for _, msg := range ctx.InputMessages() {
				if n := msg.(int); n < 3 {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []Loader{&MessageLoader{Messages: []InitialMessage{{Key: 0, Message: 0}}}},
	}
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Strategy.RunAnywhere {
		t.Skip("strategy did not derive run-anywhere")
	}
	snap := rec.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no records from run-anywhere run")
	}
	for _, p := range snap {
		// Worker slots are numbered beyond the real parts.
		if p.Part < 4 {
			t.Fatalf("run-anywhere record for real part %d, want worker slots >= 4: %+v", p.Part, p)
		}
	}
}

package netstore

// Part placement is rendezvous (highest-random-weight) hashing over the
// server list: every (part, server) pair gets a deterministic score and the
// part's replica set is the top-R servers by score. Placement is a pure
// function of part index and server count, so every client computes the same
// assignment with no coordination, and every table with the same part count
// lands its part i on the same servers — which is exactly the co-placement
// contract ShardView agents rely on.

// splitmix64 is the finalizer used across the repo for deterministic,
// well-mixed decisions from structured coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// placementScore ranks server s for part p.
func placementScore(part, server int) uint64 {
	return splitmix64(uint64(part)*0x9E3779B97F4A7C15 ^ uint64(server)*0xD1B54A32D192ED03)
}

// replicaSet returns the part's servers in preference order: the first entry
// is the part's home (primary), the first `replicas` entries form its replica
// set. Ties (impossible in practice, but cheap to pin down) break toward the
// lower server index so the order is total.
func replicaSet(part, servers, replicas int) []int {
	if replicas > servers {
		replicas = servers
	}
	order := make([]int, servers)
	for i := range order {
		order[i] = i
	}
	// Selection of the top `replicas` by score; server counts are single
	// digits, so the quadratic scan beats sorting machinery.
	for i := 0; i < replicas; i++ {
		best := i
		for j := i + 1; j < servers; j++ {
			si, sj := placementScore(part, order[best]), placementScore(part, order[j])
			if sj > si || (sj == si && order[j] < order[best]) {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	return order[:replicas]
}

// Benchmarks regenerating the paper's evaluation (§V), one benchmark family
// per table/experiment, plus ablations for the §II-A execution
// optimizations. Sizes here are scaled down so `go test -bench=.` finishes
// quickly; cmd/ripple-bench runs the same experiments at paper scale and
// prints paper-style rows.
package ripple

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/matrix"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/pagerank"
	"ripple/internal/sssp"
	"ripple/internal/summa"
	"ripple/internal/workload"
)

// reportMetrics publishes a benchmark's engine-counter snapshot alongside the
// timings: messages and compute invocations as per-op benchmark metrics, the
// full counter set and the step-duration histogram via the log.
func reportMetrics(b *testing.B, col *metrics.Collector) {
	b.Helper()
	snap := col.Snapshot()
	n := float64(b.N)
	b.ReportMetric(float64(snap.MessagesSent)/n, "msgs/op")
	b.ReportMetric(float64(snap.ComputeInvocations)/n, "invocations/op")
	if snap.Steps > 0 {
		b.ReportMetric(float64(snap.Steps)/n, "steps/op")
	}
	b.Logf("metrics: %s", snap)
	if hist := col.StepDurations().Snapshot(); hist.Count > 0 {
		b.Logf("step durations: %s", hist)
	}
}

// ---------------------------------------------------------------------------
// Table I — PageRank: direct variant vs MapReduce variant.
// Paper graphs: (132k, 4.34M), (132k, 8.68M), (262k, 8.68M); 1/20 scale here.

var table1Shapes = []struct {
	vertices, edges int
}{
	{6600, 217000},
	{6600, 434000},
	{13100, 434000},
}

const table1Iterations = 5

func table1Graph(b *testing.B, vertices, edges int) *workload.DirectedGraph {
	b.Helper()
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(7)), vertices, edges, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkTable1PageRankDirect(b *testing.B) {
	for _, shape := range table1Shapes {
		b.Run(fmt.Sprintf("v%d_e%d", shape.vertices, shape.edges), func(b *testing.B) {
			g := table1Graph(b, shape.vertices, shape.edges)
			col := &metrics.Collector{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store := memstore.New(memstore.WithParts(6))
				engine := NewEngine(store, WithMetrics(col))
				if _, err := pagerank.LoadGraph(store, "g", g, 6); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := pagerank.RunDirect(engine, pagerank.Config{
					GraphTable: "g", Iterations: table1Iterations,
				}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = store.Close()
				b.StartTimer()
			}
			reportMetrics(b, col)
		})
	}
}

func BenchmarkTable1PageRankMapReduce(b *testing.B) {
	for _, shape := range table1Shapes {
		b.Run(fmt.Sprintf("v%d_e%d", shape.vertices, shape.edges), func(b *testing.B) {
			g := table1Graph(b, shape.vertices, shape.edges)
			col := &metrics.Collector{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store := memstore.New(memstore.WithParts(6))
				engine := NewEngine(store, WithMetrics(col))
				tab, err := pagerank.LoadGraph(store, "g", g, 6)
				if err != nil {
					b.Fatal(err)
				}
				if err := pagerank.SeedRanks(tab); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := pagerank.RunMapReduce(engine, pagerank.Config{
					GraphTable: "g", Iterations: table1Iterations,
				}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = store.Close()
				b.StartTimer()
			}
			reportMetrics(b, col)
		})
	}
}

// ---------------------------------------------------------------------------
// Table II — block multiplications per step of BSPified 3×3 SUMMA.
// The schedule itself is exercised (and asserted) in internal/summa tests;
// this measures regenerating it from a live synchronized run.

func BenchmarkTable2SummaSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := matrix.Random(rng, 60, 60)
	m2 := matrix.Random(rng, 60, 60)
	want := []int{1, 3, 6, 3, 6, 3, 5}
	for i := 0; i < b.N; i++ {
		store := memstore.New(memstore.WithParts(9))
		out, err := summa.Multiply(store, summa.Config{Grid: 3, Synchronized: true}, a, m2)
		if err != nil {
			b.Fatal(err)
		}
		for s := range want {
			if out.MultsPerStep[s] != want[s] {
				b.Fatalf("Table II mismatch: %v", out.MultsPerStep)
			}
		}
		_ = store.Close()
	}
}

// ---------------------------------------------------------------------------
// Experiment V-B — SUMMA runtime with vs without synchronization
// (paper: 90 s vs 51 s on WXS with 10 containers).

func benchSumma(b *testing.B, synchronized bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	const n = 300
	const latency = 2 * time.Millisecond
	a := matrix.Random(rng, n, n)
	m2 := matrix.Random(rng, n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := gridstore.New(gridstore.WithParts(10), gridstore.WithLatency(latency))
		b.StartTimer()
		if _, err := summa.Multiply(store, summa.Config{
			Grid: 3, Synchronized: synchronized, Latency: latency,
		}, a, m2); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

func BenchmarkSummaSync(b *testing.B)   { benchSumma(b, true) }
func BenchmarkSummaNoSync(b *testing.B) { benchSumma(b, false) }

// ---------------------------------------------------------------------------
// Experiment V-C — incremental SSSP: selective enablement vs full scanning
// (paper: 0.21 s vs 78 s for ten batches of 1000 changes on 100k vertices).

const (
	ssspVertices  = 3000
	ssspEdges     = 54000
	ssspBatchSize = 100
)

func ssspBatches(n int) [][]workload.Change {
	rng := rand.New(rand.NewSource(17))
	out := make([][]workload.Change, n)
	for i := range out {
		out[i] = workload.ChangeBatch(rng, ssspVertices, ssspBatchSize, 1.3, 0.5)
	}
	return out
}

func BenchmarkSSSPSelective(b *testing.B) {
	g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(19)), ssspVertices, ssspEdges, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	store := memstore.New(memstore.WithParts(6))
	defer func() { _ = store.Close() }()
	col := &metrics.Collector{}
	drv := sssp.NewSelective(NewEngine(store, WithMetrics(col)), "sel", 0, 6)
	if err := drv.Init(g); err != nil {
		b.Fatal(err)
	}
	batches := ssspBatches(64)
	col.Reset() // measure the batches, not graph loading
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drv.ApplyBatch(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	reportMetrics(b, col)
}

func BenchmarkSSSPFullScan(b *testing.B) {
	g, err := workload.PowerLawUndirected(rand.New(rand.NewSource(19)), ssspVertices, ssspEdges, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	store := memstore.New(memstore.WithParts(6))
	defer func() { _ = store.Close() }()
	col := &metrics.Collector{}
	drv := sssp.NewFullScan(NewEngine(store, WithMetrics(col)), "fs", 0, 6)
	if err := drv.Init(g); err != nil {
		b.Fatal(err)
	}
	batches := ssspBatches(64)
	col.Reset() // measure the batches, not graph loading
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := drv.ApplyBatch(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	reportMetrics(b, col)
}

// ---------------------------------------------------------------------------
// Ablations for the §II-A optimization areas.

// Ablation: message combiner on/off (PageRank direct variant).
func benchCombiner(b *testing.B, disable bool) {
	b.Helper()
	g := table1Graph(b, 3000, 60000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := memstore.New(memstore.WithParts(6))
		engine := NewEngine(store)
		if _, err := pagerank.LoadGraph(store, "g", g, 6); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := pagerank.RunDirect(engine, pagerank.Config{
			GraphTable: "g", Iterations: 3, DisableCombiner: disable,
		}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

func BenchmarkAblationCombinerOn(b *testing.B)  { benchCombiner(b, false) }
func BenchmarkAblationCombinerOff(b *testing.B) { benchCombiner(b, true) }

// scatterJob fans messages over many keys; used by the sort/collect/steal
// ablations.
func scatterJob(name string, props ebsp.Properties, keys, rounds int) *ebsp.Job {
	seeds := make([]ebsp.InitialMessage, keys)
	for i := range seeds {
		seeds[i] = ebsp.InitialMessage{Key: i, Message: 0}
	}
	return &ebsp.Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Properties:  props,
		Compute: ebsp.ComputeFunc(func(ctx *ebsp.Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if n < rounds {
					ctx.Send((ctx.Key().(int)*31+n+1)%keys, n+1)
				}
			}
			return false
		}),
		Loaders: []ebsp.Loader{&ebsp.MessageLoader{Messages: seeds}},
	}
}

func benchStrategy(b *testing.B, props ebsp.Properties, override func(ebsp.Strategy) ebsp.Strategy) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := memstore.New(memstore.WithParts(6))
		opts := []ebsp.Option{}
		if override != nil {
			opts = append(opts, ebsp.WithStrategyOverride(override))
		}
		engine := NewEngine(store, opts...)
		b.StartTimer()
		if _, err := engine.Run(scatterJob("ablate", props, 5000, 4)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

// Ablation: ¬needs-order ⇒ no-sort.
func BenchmarkAblationSortOff(b *testing.B) {
	benchStrategy(b, ebsp.Properties{}, nil)
}

func BenchmarkAblationSortOn(b *testing.B) {
	benchStrategy(b, ebsp.Properties{NeedsOrder: true}, nil)
}

// Ablation: one-msg ∧ no-continue ⇒ no-collect. The scatter job sends at
// most one message per key and never continues, so no-collect is sound.
func BenchmarkAblationCollectOff(b *testing.B) {
	benchStrategy(b, ebsp.Properties{OneMsg: true, NoContinue: true}, nil)
}

func BenchmarkAblationCollectOn(b *testing.B) {
	benchStrategy(b, ebsp.Properties{OneMsg: true, NoContinue: true},
		func(s ebsp.Strategy) ebsp.Strategy { s.Collect = true; return s })
}

// Ablation: no-collect ∧ rare-state ⇒ run-anywhere (work stealing). The
// workload is skewed: almost all messages land in one part, so pinned
// execution serializes while stealing balances.
func benchRunAnywhere(b *testing.B, steal bool) {
	b.Helper()
	const keys = 512
	// All traffic goes to keys owned by part 0 of 6.
	store0 := memstore.New(memstore.WithParts(6))
	tab, err := store0.CreateTable("probe")
	if err != nil {
		b.Fatal(err)
	}
	hot := make([]int, 0, keys)
	for k := 0; len(hot) < keys; k++ {
		if tab.PartOf(k) == 0 {
			hot = append(hot, k)
		}
	}
	_ = store0.Close()

	var sink atomic.Int64
	job := func() *ebsp.Job {
		seeds := make([]ebsp.InitialMessage, keys)
		for i, k := range hot {
			seeds[i] = ebsp.InitialMessage{Key: k, Message: 2500}
		}
		return &ebsp.Job{
			Name:        "steal",
			StateTables: []string{"steal_state"},
			Properties:  ebsp.Properties{OneMsg: true, NoContinue: true, RareState: true},
			Compute: ebsp.ComputeFunc(func(ctx *ebsp.Context) bool {
				// CPU-heavy, state-light work.
				n := ctx.InputMessages()[0].(int)
				acc := 0
				for i := 0; i < n*100; i++ {
					acc += i * i
				}
				sink.Add(int64(acc))
				return false
			}),
			Loaders: []ebsp.Loader{&ebsp.MessageLoader{Messages: seeds}},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := memstore.New(memstore.WithParts(6))
		opts := []ebsp.Option{}
		if !steal {
			opts = append(opts, ebsp.WithStrategyOverride(func(s ebsp.Strategy) ebsp.Strategy {
				s.RunAnywhere = false
				return s
			}))
		}
		engine := NewEngine(store, opts...)
		b.StartTimer()
		if _, err := engine.Run(job()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

func BenchmarkAblationRunAnywhereOn(b *testing.B)  { benchRunAnywhere(b, true) }
func BenchmarkAblationRunAnywhereOff(b *testing.B) { benchRunAnywhere(b, false) }

// Ablation: deterministic ⇒ fast recovery — the overhead of transactional
// step commits on a store that supports them.
func benchRecovery(b *testing.B, recovery bool) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := gridstore.New(gridstore.WithParts(6), gridstore.WithReplicas(2))
		opts := []ebsp.Option{}
		if !recovery {
			opts = append(opts, ebsp.WithStrategyOverride(func(s ebsp.Strategy) ebsp.Strategy {
				s.FastRecovery = false
				return s
			}))
		}
		engine := NewEngine(store, opts...)
		b.StartTimer()
		job := scatterJob("rec", ebsp.Properties{Deterministic: true}, 2000, 4)
		if _, err := engine.Run(job); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

func BenchmarkAblationRecoveryOn(b *testing.B)  { benchRecovery(b, true) }
func BenchmarkAblationRecoveryOff(b *testing.B) { benchRecovery(b, false) }

// Ablation: cross-partition marshalling cost (the emulated network).
func benchMarshalling(b *testing.B, marshal bool) {
	b.Helper()
	g := table1Graph(b, 3000, 60000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := []memstore.Option{memstore.WithParts(6)}
		if !marshal {
			opts = append(opts, memstore.WithoutMarshalling())
		}
		store := memstore.New(opts...)
		engine := NewEngine(store)
		if _, err := pagerank.LoadGraph(store, "g", g, 6); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := pagerank.RunDirect(engine, pagerank.Config{
			GraphTable: "g", Iterations: 3,
		}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = store.Close()
		b.StartTimer()
	}
}

func BenchmarkAblationMarshallingOn(b *testing.B)  { benchMarshalling(b, true) }
func BenchmarkAblationMarshallingOff(b *testing.B) { benchMarshalling(b, false) }

// Command faulttolerance demonstrates Ripple's two fault-tolerance
// mechanisms on a live job.
//
// First, the paper's §IV-A outline: on a store with per-shard ACID
// transactions and replication (the WXS-like gridstore), a deterministic job
// commits each part's step atomically; when a primary replica is killed
// mid-step, the transaction rolls back, a surviving replica is promoted, and
// the engine replays the step — the job completes with correct results.
//
// Second, the checkpoint extension: a job snapshots its barrier state every
// few steps, an "outage" interrupts it, and Resume continues from the last
// snapshot instead of starting over.
package main

import (
	"fmt"
	"log"
	"sync"

	"ripple"
)

func main() {
	if err := replayDemo(); err != nil {
		log.Fatalf("replay demo: %v", err)
	}
	fmt.Println()
	if err := checkpointDemo(); err != nil {
		log.Fatalf("checkpoint demo: %v", err)
	}
}

// counterJob forwards a counter along a chain of components; deterministic,
// so replay-based recovery applies.
func counterJob(name string, length int, fail func(ctx *ripple.Context)) *ripple.Job {
	return &ripple.Job{
		Name:        name,
		StateTables: []string{name + "_state"},
		Properties:  ripple.Properties{Deterministic: true},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			for _, m := range ctx.InputMessages() {
				n := m.(int)
				ctx.WriteState(0, n)
				if fail != nil {
					fail(ctx)
				}
				if n < length {
					ctx.Send(ctx.Key().(int)+1, n+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{
			Messages: []ripple.InitialMessage{{Key: 0, Message: 1}},
		}},
	}
}

func replayDemo() error {
	fmt.Println("=== replay-based recovery (paper §IV-A outline) ===")
	store := ripple.NewGridStore(ripple.GridParts(4), ripple.GridReplicas(2))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store)

	// Kill the primary of the shard executing step 5, exactly once,
	// mid-transaction.
	var once sync.Once
	job := counterJob("replay", 12, func(ctx *ripple.Context) {
		if ctx.StepNum() != 5 {
			return
		}
		once.Do(func() {
			tab, _ := store.LookupTable("replay_state")
			part := tab.PartOf(ctx.Key())
			fmt.Printf("  !! killing primary replica of part %d during step %d\n", part, ctx.StepNum())
			if err := store.FailPrimary("replay_state", part); err != nil {
				log.Fatalf("FailPrimary: %v", err)
			}
		})
	})

	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	fmt.Printf("  job completed: %d steps, %d replay(s) performed\n", res.Steps, res.Recoveries)
	tab, _ := store.LookupTable("replay_state")
	for i := 0; i < 12; i++ {
		v, ok, err := tab.Get(i)
		if err != nil || !ok || v != i+1 {
			return fmt.Errorf("state[%d] = %v, %v, %v (data lost?)", i, v, ok, err)
		}
	}
	fmt.Println("  all 12 states intact despite the mid-step primary failure")
	return nil
}

func checkpointDemo() error {
	fmt.Println("=== checkpoint/resume (barrier snapshots) ===")
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store, ripple.WithCheckpoints(3))

	// Run with an "outage" at step 8 (the aborter stands in for a crash;
	// checkpoints exist at steps 3 and 6).
	job := counterJob("ckpt", 20, nil)
	job.Aborter = ripple.AborterFunc(func(step int, _ map[string]any) bool {
		return step >= 8
	})
	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	fmt.Printf("  first run interrupted after step %d (checkpoints at 3 and 6)\n", res.Steps)

	// Resume from the latest snapshot; no aborter this time.
	res2, err := engine.Resume(counterJob("ckpt", 20, nil))
	if err != nil {
		return err
	}
	fmt.Printf("  resumed and completed at step %d\n", res2.Steps)
	tab, _ := store.LookupTable("ckpt_state")
	n, _ := tab.Size()
	fmt.Printf("  final state table holds %d entries (want 20)\n", n)
	if n != 20 {
		return fmt.Errorf("resume produced %d entries", n)
	}
	return nil
}

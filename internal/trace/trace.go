// Package trace provides a bounded, in-memory event tracer for the EBSP
// engine and the stores: typed span events with monotonic timestamps in a
// fixed-capacity ring buffer, dumpable as JSONL. The tracer answers the
// questions the flat counters cannot — where inside a job the time went
// (compute vs barrier vs checkpoint), and what a no-sync run, which has no
// steps at all, was doing while it quiesced.
//
// Like the metrics collector, a nil *Tracer is valid and every method is a
// no-op, so instrumented code never needs nil checks. The ring overwrites
// the oldest spans when full; Dropped reports how many were lost.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Kind identifies a span event type.
type Kind uint8

// Span kinds recorded by the engine, the queueing layer, and the stores.
const (
	KindJobStart         Kind = iota + 1 // a job began executing (N = parts)
	KindJobEnd                           // a job finished (N = steps, Dur = wall time)
	KindStepStart                        // a synchronized step began
	KindStepEnd                          // a synchronized step finished (N = envelopes emitted)
	KindBarrier                          // barrier crossed (Dur = slowest-fastest part skew)
	KindPartCompute                      // one part's share of a step (N = invocations)
	KindCombinerMerge                    // combiner merges in one part's step (N = messages eliminated)
	KindCheckpoint                       // barrier-state snapshot written (N = pending envelopes)
	KindProgress                         // no-sync watermark reached (N = envelopes delivered)
	KindQuiesce                          // no-sync quiescence probe succeeded for one part
	KindLogReplay                        // diskstore replayed a part log on open (N = bytes)
	KindCompaction                       // diskstore compacted a part log (N = bytes reclaimed)
	KindFault                            // chaos layer injected a fault (N = per-cell op index)
	KindRetry                            // engine retried a transient failure (N = attempt)
	KindFailoverRecovery                 // engine healed + re-ran from a checkpoint (N = steps re-run)
	KindLoad                             // loaders materialized initial state + messages (N = envelopes)
	KindDeliver                          // a causal delivery edge: messages from one sender span
	// arrived at one (step, part) receiver (N = envelopes on the edge).
	KindRPC       // a transport client RPC round-trip (N = attempt)
	KindRPCServer // a part-server handled one RPC (N = request frame ID)
	KindStats     // a metrics-snapshot flush record (counters in Attrs)
	// KindMemtableFlush is appended after KindStats so persisted numeric
	// kind values from earlier builds stay stable.
	KindMemtableFlush // diskstore flushed a memtable to an SSTable run (N = bytes written)
)

var kindNames = map[Kind]string{
	KindJobStart:         "job_start",
	KindJobEnd:           "job_end",
	KindStepStart:        "step_start",
	KindStepEnd:          "step_end",
	KindBarrier:          "barrier",
	KindPartCompute:      "part_compute",
	KindCombinerMerge:    "combiner_merge",
	KindCheckpoint:       "checkpoint",
	KindProgress:         "progress",
	KindQuiesce:          "quiesce",
	KindLogReplay:        "log_replay",
	KindCompaction:       "compaction",
	KindFault:            "fault",
	KindRetry:            "retry",
	KindFailoverRecovery: "failover_recovery",
	KindLoad:             "load",
	KindDeliver:          "deliver",
	KindRPC:              "rpc",
	KindRPCServer:        "rpc_server",
	KindStats:            "stats",
	KindMemtableFlush:    "memtable_flush",
}

// kindByName is the reverse of kindNames, built once at init.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// KindByName resolves a snake_case kind name ("part_compute") or the
// numeric fallback form ("kind(42)") back to its Kind value.
func KindByName(name string) (Kind, bool) {
	if k, ok := kindByName[name]; ok {
		return k, true
	}
	var n uint8
	if _, err := fmt.Sscanf(name, "kind(%d)", &n); err == nil {
		return Kind(n), true
	}
	return 0, false
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind from either its name ("part_compute",
// including the "kind(N)" fallback form) or a bare number, so JSONL dumps
// round-trip through offline tooling.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		got, ok := KindByName(name)
		if !ok {
			return fmt.Errorf("trace: unknown span kind %q", name)
		}
		*k = got
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("trace: span kind must be a name or number, got %s", b)
	}
	*k = Kind(n)
	return nil
}

// Span is one recorded event. At is the span's start, monotonic nanoseconds
// since the tracer was created; Dur is zero for instantaneous events. Part
// is -1 for events not tied to one part.
//
// Trace, Span, and Parent causally link events: all spans of one job run
// share a Trace ID, a span with a nonzero Span ID is addressable as a
// parent, and Parent points at the span that caused this one. All three are
// zero for unsampled runs and for legacy flat records, which keeps the flat
// ring behavior (and its JSONL shape) unchanged.
type Span struct {
	Seq    uint64            `json:"seq"`
	Kind   Kind              `json:"kind"`
	Job    string            `json:"job,omitempty"`
	Step   int               `json:"step,omitempty"`
	Part   int               `json:"part"`
	N      int64             `json:"n,omitempty"`
	At     time.Duration     `json:"at_ns"`
	Dur    time.Duration     `json:"dur_ns,omitempty"`
	Trace  uint64            `json:"trace,omitempty"`
	Span   uint64            `json:"span,omitempty"`
	Parent uint64            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans into a bounded ring buffer.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	buf     []Span
	next    int // ring write position
	seq     uint64
	dropped uint64
	wrapped bool
}

// DefaultCapacity is the span capacity used when New is given a
// non-positive one.
const DefaultCapacity = 16384

// New creates a tracer retaining at most capacity spans (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{start: time.Now(), buf: make([]Span, 0, capacity)}
}

// Record appends one span. dur may be zero for instantaneous events; for
// timed spans the recorded At is backdated by dur so it marks the span's
// start. Safe for concurrent use; a nil tracer no-ops.
func (t *Tracer) Record(kind Kind, job string, step, part int, n int64, dur time.Duration) {
	if t == nil {
		return
	}
	t.RecordSpan(Span{Kind: kind, Job: job, Step: step, Part: part, N: n, Dur: dur})
}

// RecordSpan appends one span with explicit causal linkage (Trace, Span,
// Parent, Attrs). Seq is assigned by the tracer; a zero At is stamped as
// now minus Dur, so it marks the span's start. Safe for concurrent use; a
// nil tracer no-ops.
func (t *Tracer) RecordSpan(s Span) {
	if t == nil {
		return
	}
	if s.At == 0 {
		s.At = time.Since(t.start) - s.Dur
		if s.At < 0 {
			s.At = 0
		}
	}
	t.mu.Lock()
	t.seq++
	s.Seq = t.seq
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % len(t.buf)
		t.dropped++
		t.wrapped = true
	}
	t.mu.Unlock()
}

// WallStart is the wall-clock instant the tracer's monotonic clock started;
// span At offsets are relative to it. A nil tracer reports the zero time.
func (t *Tracer) WallStart() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Seq reports the last sequence number assigned, which is also the total
// number of spans ever recorded. It is the cursor value for SnapshotSince:
// a poller that remembers the Seq of its last drain sees each span once.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// SnapshotSince copies the retained spans with Seq > cursor, oldest first.
// It is the incremental drain behind the telemetry trace-dump op: a remote
// collector passes the last Seq it saw and receives only the tail. Spans
// that wrapped out of the ring before the cursor advanced past them are
// simply gone — compare Dropped across polls to detect that loss.
func (t *Tracer) SnapshotSince(cursor uint64) []Span {
	if t == nil {
		return nil
	}
	all := t.Snapshot()
	// Spans are seq-ordered in the ring; binary-search the cursor boundary.
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid].Seq <= cursor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(all) {
		return nil
	}
	out := make([]Span, len(all)-lo)
	copy(out, all[lo:])
	return out
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies the retained spans in recording order (oldest first).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Reset discards all retained spans (the monotonic clock keeps running).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.dropped = 0
	t.wrapped = false
	t.mu.Unlock()
}

// WriteJSONL dumps the retained spans as one JSON object per line, oldest
// first. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Snapshot() {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

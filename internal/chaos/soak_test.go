package chaos_test

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"ripple/internal/chaos"
	"ripple/internal/ebsp"
	"ripple/internal/gridstore"
	"ripple/internal/matrix"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/pagerank"
	"ripple/internal/summa"
	"ripple/internal/workload"
)

// soakSeeds returns the seed matrix: RIPPLE_SOAK_SEEDS (comma-separated)
// when set, otherwise a short default so `go test` and CI stay fast.
func soakSeeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("RIPPLE_SOAK_SEEDS")
	if spec == "" {
		spec = "1,2"
	}
	var seeds []int64
	for _, f := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("RIPPLE_SOAK_SEEDS %q: %v", spec, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// soakPageRank runs the Table I workload (scaled down) on a replicated
// gridstore under continuous transient faults plus two scheduled primary
// kills, with the engine recovering on its own — no manual Resume. It
// returns the injected-fault trace.
func soakPageRank(t *testing.T, seed int64, g *workload.DirectedGraph) []chaos.Record {
	t.Helper()
	m := &metrics.Collector{}
	sched := chaos.Schedule{
		Seed:         seed,
		StoreErrRate: 0.01,
		AgentErrRate: 0.01,
		Kills: []chaos.Kill{
			{Table: "soak_graph", Part: 1, AfterDispatches: 20},
			{Table: "soak_graph", Part: 4, AfterDispatches: 40},
		},
	}
	inj := chaos.NewInjector(sched, chaos.WithMetrics(m))
	gs := gridstore.New(gridstore.WithParts(6), gridstore.WithReplicas(2), gridstore.WithMetrics(m))
	// Load the input on the raw store — faults start with the job, not the
	// test fixture — then run the whole job through the chaos decorator.
	tab, err := pagerank.LoadGraph(gs, "soak_graph", g, 6)
	if err != nil {
		t.Fatal(err)
	}
	store := chaos.Wrap(gs, inj)
	defer func() { _ = store.Close() }()

	e := ebsp.NewEngine(store, ebsp.WithMetrics(m), ebsp.WithCheckpoints(3))
	if _, err := pagerank.RunDirect(e, pagerank.Config{GraphTable: "soak_graph", Iterations: 8}); err != nil {
		t.Fatalf("seed %d: pagerank under chaos: %v", seed, err)
	}
	got, err := pagerank.ReadRanks(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := pagerank.Reference(g, 0.85, 8)
	for v, w := range want {
		r, ok := got[v]
		if !ok {
			t.Fatalf("seed %d: vertex %d missing", seed, v)
		}
		if diff := r - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: rank[%d] = %v, want %v", seed, v, r, w)
		}
	}

	kills := 0
	recs := inj.Records()
	for _, r := range recs {
		if r.Kind == "kill" {
			kills++
		}
	}
	if kills != 2 {
		t.Errorf("seed %d: %d kills fired, want 2", seed, kills)
	}
	snap := m.Snapshot()
	if snap.Failovers < 2 {
		t.Errorf("seed %d: Failovers = %d, want >= 2", seed, snap.Failovers)
	}
	if snap.FaultsInjected == 0 {
		t.Errorf("seed %d: no faults injected", seed)
	}
	return recs
}

// soakSUMMA runs the Exp V-B workload (G = 3, barriers removed) under mq
// duplication, latency jitter, transient mq/store errors. It returns the
// injected-fault trace.
func soakSUMMA(t *testing.T, seed int64, a, b matrix.Dense) []chaos.Record {
	t.Helper()
	m := &metrics.Collector{}
	sched := chaos.Schedule{
		Seed:         seed,
		StoreErrRate: 0.01,
		MQErrRate:    0.02,
		MQDupRate:    0.1,
		MQDelay:      200 * time.Microsecond, MQDelayRate: 0.2,
	}
	inj := chaos.NewInjector(sched, chaos.WithMetrics(m))
	store := chaos.Wrap(memstore.New(memstore.WithParts(9)), inj)
	defer func() { _ = store.Close() }()

	out, err := summa.Multiply(store, summa.Config{
		Grid:    3,
		Metrics: m,
		MQ:      mq.NewSystem(mq.WithFaults(inj), mq.WithMetrics(m)),
	}, a, b)
	if err != nil {
		t.Fatalf("seed %d: summa under chaos: %v", seed, err)
	}
	direct, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.C.EqualWithin(direct, 1e-9) {
		t.Errorf("seed %d: SUMMA product != direct product", seed)
	}
	if out.Result.Strategy.Sync {
		t.Errorf("seed %d: expected no-sync execution", seed)
	}
	if m.Snapshot().FaultsInjected == 0 {
		t.Errorf("seed %d: no faults injected", seed)
	}
	return inj.Records()
}

func TestSoakUnderChaos(t *testing.T) {
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(7)), 300, 2200, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a := matrix.Random(rng, 12, 12)
	b := matrix.Random(rng, 12, 12)

	for _, seed := range soakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			prTrace := soakPageRank(t, seed, g)
			smTrace := soakSUMMA(t, seed, a, b)

			// Reproducibility: the same seed over the same workload injects
			// the same fault set.
			if again := soakPageRank(t, seed, g); !reflect.DeepEqual(prTrace, again) {
				t.Errorf("seed %d: pagerank fault trace diverged between runs:\n%v\nvs\n%v",
					seed, prTrace, again)
			}
			if again := soakSUMMA(t, seed, a, b); !reflect.DeepEqual(smTrace, again) {
				t.Errorf("seed %d: summa fault trace diverged between runs:\n%v\nvs\n%v",
					seed, smTrace, again)
			}
		})
	}
}

package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ripple"
	"ripple/internal/ebsp"
	"ripple/internal/fleet"
	"ripple/internal/metrics"
	"ripple/internal/netstore"
	"ripple/internal/pagerank"
	"ripple/internal/profile"
	"ripple/internal/trace"
	"ripple/internal/workload"
)

// runFleetExp is the fleet observability demonstration: a traced PageRank
// against >= 2 part-servers (loopback by default, external via -net-addrs),
// then the whole telemetry loop over the admin ops — fleet metrics poll,
// trace-ring drain, clock-aligned timeline assembly, enclosure check, and the
// wire-vs-exec latency decomposition feeding the skew report.
//
// Unlike the soak's loopback fleet, each server here gets its own collector
// and tracer: the experiment must pull every byte of telemetry over the wire,
// exactly as it would from separate processes.
func runFleetExp(scale float64, seed int64, iterations, netN int, netAddrList, outPath string) {
	var extAddrs []string
	if netAddrList != "" {
		extAddrs = strings.Split(netAddrList, ",")
		netN = len(extAddrs)
	}
	if netN == 0 {
		netN = 2
	}
	if netN < 2 {
		log.Fatalf("-exp fleet needs at least 2 part-servers, got %d", netN)
	}

	// The experiment always traces: client rpc spans are the left-hand side
	// of every timeline pair. Reuse the run's shared tracer when -trace is
	// set so the dump includes this run; otherwise trace privately.
	tracer := obsTracer
	if tracer == nil {
		tracer = trace.New(trace.DefaultCapacity)
	}
	sampler := obsSampler
	if sampler == nil {
		sampler = trace.NewSampler(1, seed)
	}
	prof := obsProfiler
	if prof == nil {
		prof = profile.New(profile.DefaultCapacity)
	}

	fmt.Printf("== Fleet observability: telemetry over the data plane's own wire ==\n")

	addrs := extAddrs
	var servers []*netstore.Server
	if addrs == nil {
		for i := 0; i < netN; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatalf("fleet: %v", err)
			}
			srv := netstore.NewServer(
				netstore.WithServerMetrics(&metrics.Collector{}),
				netstore.WithServerTracer(trace.New(trace.DefaultCapacity)),
			)
			servers = append(servers, srv)
			addrs = append(addrs, ln.Addr().String())
			go func() { _ = srv.Serve(ln) }()
		}
		fmt.Printf("   %d loopback part-servers (own tracer and collector each)\n", netN)
	} else {
		fmt.Printf("   %d external part-servers: %s\n", netN, strings.Join(addrs, ", "))
	}
	defer func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()

	c, err := netstore.Dial(addrs,
		netstore.WithHeartbeat(25*time.Millisecond, 3),
		netstore.WithRequestTimeout(2*time.Second),
		netstore.WithBackoffSeed(seed),
		netstore.WithMetrics(obsMetrics),
		netstore.WithTracer(tracer),
	)
	if err != nil {
		log.Fatalf("dial part-servers: %v", err)
	}
	defer func() { _ = c.Close() }()

	fc := &fleet.Collector{Client: c, Engine: obsMetrics, EngineTracer: tracer}
	if obsMux != nil {
		obsMux.Handle("/fleet/metrics", fc.Handler())
		fmt.Printf("   serving the merged fleet exposition at /fleet/metrics\n")
	}

	// A small traced PageRank gives the wire real work: every get/put/msg is
	// an rpc span on the client and an rpc_server span on some server.
	v := int(20000*scale) + 400
	e := 8 * v
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(seed)), v, e, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := pagerank.LoadGraph(c, "fleet_graph", g, 6)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = c.DropTable("fleet_graph") }()
	engine := ripple.NewEngine(c, ebsp.WithMetrics(obsMetrics), ebsp.WithTracer(tracer),
		ebsp.WithTraceSampler(sampler), ebsp.WithLogger(obsLogger), ebsp.WithProfiler(prof))
	start := time.Now()
	if _, err := pagerank.RunDirect(engine, pagerank.Config{GraphTable: "fleet_graph", Iterations: iterations}); err != nil {
		log.Fatalf("pagerank over fleet: %v", err)
	}
	if _, err := pagerank.ReadRanks(tab); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   pagerank: %d vertices, %d edges, %d iterations over the fleet (%.3f s)\n\n",
		v, e, iterations, time.Since(start).Seconds())

	// One fleet poll: per-server stats pulled over opStats, detector verdicts
	// and clock estimates from the transport.
	snap := fc.Poll()
	fmt.Printf("   fleet snapshot (one poll over the admin ops):\n")
	fmt.Printf("   %-4s %-21s %-5s %8s %9s %10s %10s %9s\n",
		"SRV", "ADDR", "UP", "RPCS", "P99", "IN-BYTES", "OUT-BYTES", "CLOCK±ERR")
	for _, ent := range snap.Servers {
		up := "-"
		var clock string
		for _, st := range snap.Statuses {
			if st.Server == ent.Server {
				if st.Up {
					up = "up"
				} else {
					up = "DOWN"
				}
				clock = fmt.Sprintf("%v±%v",
					time.Duration(st.Clock.OffsetNS).Round(time.Microsecond),
					time.Duration(st.Clock.ErrorNS).Round(time.Microsecond))
			}
		}
		if ent.Err != "" {
			fmt.Printf("   %-4d %-21s %-5s unreachable: %s\n", ent.Server, ent.Addr, up, ent.Err)
			continue
		}
		agg := aggregateEndpoints(ent.Stats.Endpoints)
		fmt.Printf("   %-4d %-21s %-5s %8d %9v %10d %10d %9s\n",
			ent.Server, ent.Addr, up, ent.Stats.Counters.RPCCalls,
			time.Duration(agg.P99()).Round(time.Microsecond),
			ent.Stats.WireInBytes, ent.Stats.WireOutBytes, clock)
	}

	// Drain every trace ring and assemble the merged, clock-aligned timeline.
	dumps, _ := fc.DumpServers(nil)
	merged, rep := fleet.Assemble(tracer.Snapshot(), dumps)
	fmt.Printf("\n   merged timeline: %d spans, %d pairs, %d unmatched client, %d unmatched server\n",
		len(merged), rep.Pairs, rep.UnmatchedClient, rep.UnmatchedServer)
	for _, al := range rep.Servers {
		fmt.Printf("   server %d: clock offset %v ± %v (%s, %d pairs, %d spans), max residual %v\n",
			al.Server, time.Duration(al.OffsetNS).Round(time.Microsecond),
			time.Duration(al.ErrorNS).Round(time.Microsecond),
			al.Source, al.Pairs, al.Spans, time.Duration(al.MaxAdjustNS).Round(time.Microsecond))
	}
	cr := fleet.Check(merged)
	if cr.Pairs == 0 {
		log.Fatal("fleet: no client/server span pair matched — tracing is not reaching the wire")
	}
	fmt.Printf("   enclosure check: %d pairs, %d violations\n", cr.Pairs, len(cr.Violations))
	for _, viol := range cr.Violations {
		fmt.Printf("   VIOLATION: %s\n", viol)
	}

	if br := fleet.Decompose(merged); len(br) > 0 {
		fmt.Printf("\n   client-observed RPC latency, decomposed (exec = server handler, wire = rest):\n")
		fmt.Printf("   %-6s %-10s %7s %8s %12s %12s %12s\n",
			"SERVER", "ENDPOINT", "CALLS", "MATCHED", "CLIENT", "EXEC", "WIRE")
		limit := 8
		if len(br) < limit {
			limit = len(br)
		}
		for _, b := range br[:limit] {
			fmt.Printf("   %-6s %-10s %7d %8d %12v %12v %12v\n",
				b.Server, b.Endpoint, b.Calls, b.Matched,
				time.Duration(b.ClientNS), time.Duration(b.ServerNS), time.Duration(b.WireNS))
		}
	}

	// The skew report, with the per-server RPC cost attached so stragglers
	// name the server, not just the part.
	fmt.Println()
	pr := profile.AnalyzeRecorder(prof, 10)
	profile.AttachFleet(pr, merged)
	_ = profile.WriteText(os.Stdout, pr)

	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			log.Fatalf("fleet timeline: %v", err)
		}
		err = trace.WriteOTLP(f, merged, time.Unix(0, 0))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("fleet timeline: %v", err)
		}
		fmt.Printf("wrote merged fleet timeline to %s (validate: ripple-inspect -fleet %s -check)\n",
			outPath, outPath)
	}
}

// aggregateEndpoints bucket-sums a server's per-endpoint histograms into one.
func aggregateEndpoints(eps map[string]metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	var agg metrics.HistogramSnapshot
	for _, h := range eps {
		agg.Count += h.Count
		agg.Sum += h.Sum
		for i := range h.Buckets {
			agg.Buckets[i] += h.Buckets[i]
		}
	}
	return agg
}

// runTop is ripple-top: a live fleet view over the admin telemetry ops,
// redrawn every -top-interval until interrupted. It needs only addresses —
// no heartbeats, no data-path client — so it can watch a fleet some other
// process is driving.
func runTop(addrList string, interval time.Duration) {
	if addrList == "" {
		log.Fatal("-top needs -net-addrs (comma-separated part-server addresses)")
	}
	addrs := strings.Split(addrList, ",")
	ac := netstore.DialAdmin(addrs, 2*time.Second)
	defer ac.Close()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	prev := make([]netstore.ServerStats, len(addrs))
	prevAt := make([]time.Time, len(addrs))
	for {
		var b strings.Builder
		fmt.Fprintf(&b, "ripple-top — %d part-servers — %s (interval %v, ctrl-c to quit)\n\n",
			len(addrs), time.Now().Format("15:04:05"), interval)
		fmt.Fprintf(&b, "%-4s %-21s %-6s %9s %9s %8s %9s %9s %9s %6s %8s %7s %6s\n",
			"SRV", "ADDR", "STATE", "UPTIME", "RTT", "RPCS", "RPC/S", "IN-B/S", "OUT-B/S",
			"CONNS", "HEAP-MB", "GOROUT", "SPANS")
		now := time.Now()
		for i := range addrs {
			_, rtt, _, err := ac.Ping(i)
			if err != nil {
				fmt.Fprintf(&b, "%-4d %-21s %-6s %s\n", i, addrs[i], "DOWN", err)
				prevAt[i] = time.Time{}
				continue
			}
			st, serr := ac.Stats(i)
			h, herr := ac.Health(i)
			if serr != nil || herr != nil {
				e := serr
				if e == nil {
					e = herr
				}
				fmt.Fprintf(&b, "%-4d %-21s %-6s admin op failed: %v\n", i, addrs[i], "up", e)
				prevAt[i] = time.Time{}
				continue
			}
			rpcRate, inRate, outRate := "-", "-", "-"
			if !prevAt[i].IsZero() {
				dt := now.Sub(prevAt[i]).Seconds()
				if dt > 0 {
					rpcRate = fmt.Sprintf("%.0f", float64(st.Counters.RPCCalls-prev[i].Counters.RPCCalls)/dt)
					inRate = fmt.Sprintf("%.0f", float64(st.WireInBytes-prev[i].WireInBytes)/dt)
					outRate = fmt.Sprintf("%.0f", float64(st.WireOutBytes-prev[i].WireOutBytes)/dt)
				}
			}
			prev[i], prevAt[i] = st, now
			fmt.Fprintf(&b, "%-4d %-21s %-6s %9s %9v %8d %9s %9s %9s %6d %8.1f %7d %6d\n",
				i, addrs[i], "up",
				(time.Duration(st.UptimeNS) / time.Second * time.Second).String(),
				rtt.Round(10*time.Microsecond),
				st.Counters.RPCCalls, rpcRate, inRate, outRate,
				h.Conns, float64(st.HeapBytes)/1e6, st.Goroutines, st.TraceSpans)
		}
		// Home + clear, then the fresh frame: one write keeps the redraw atomic.
		fmt.Printf("\x1b[H\x1b[2J%s", b.String())

		select {
		case <-sigs:
			fmt.Println("ripple-top: interrupted")
			return
		case <-time.After(interval):
		}
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.AddSteps(1)
	c.AddBarriers(1)
	c.AddMessagesSent(1)
	c.AddMessagesCombined(1)
	c.AddComputeInvocations(1)
	c.AddMarshalledBytes(1)
	c.AddStoreGets(1)
	c.AddStorePuts(1)
	c.AddStoreDeletes(1)
	c.AddSpills(1)
	c.AddAggregationRounds(1)
	c.AddRecoveries(1)
	c.Reset()
	if snap := c.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil collector snapshot = %+v", snap)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := &Collector{}
	c.AddSteps(2)
	c.AddSteps(3)
	c.AddMessagesSent(7)
	c.AddMarshalledBytes(100)
	snap := c.Snapshot()
	if snap.Steps != 5 || snap.MessagesSent != 7 || snap.MarshalledBytes != 100 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestResetZeroes(t *testing.T) {
	c := &Collector{}
	c.AddBarriers(9)
	c.AddRecoveries(2)
	c.Reset()
	if snap := c.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("after reset: %+v", snap)
	}
}

func TestSub(t *testing.T) {
	c := &Collector{}
	c.AddSteps(3)
	before := c.Snapshot()
	c.AddSteps(4)
	c.AddSpills(2)
	diff := c.Snapshot().Sub(before)
	if diff.Steps != 4 || diff.Spills != 2 {
		t.Errorf("diff = %+v", diff)
	}
}

func TestStringMentionsEveryCounter(t *testing.T) {
	s := Snapshot{Steps: 1, Barriers: 2, MessagesSent: 3}.String()
	for _, frag := range []string{"steps=1", "barriers=2", "msgs=3", "recoveries=0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddComputeInvocations(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().ComputeInvocations; got != 8000 {
		t.Errorf("invocations = %d, want 8000", got)
	}
}

package tableops

import (
	"errors"
	"sync"
	"testing"

	"ripple/internal/kvstore"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
)

func setup(t *testing.T, m *metrics.Collector) *memstore.Store {
	t.Helper()
	opts := []memstore.Option{memstore.WithParts(4)}
	if m != nil {
		opts = append(opts, memstore.WithMetrics(m))
	}
	s := memstore.New(opts...)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func fill(t *testing.T, s kvstore.Store, name string, n int, f func(i int) any, opts ...kvstore.TableOption) kvstore.Table {
	t.Helper()
	tab, err := s.CreateTable(name, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tab.Put(i, f(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestFilter(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "src", 100, func(i int) any { return i })
	if _, err := s.CreateTable("dst", kvstore.ConsistentWith("src")); err != nil {
		t.Fatal(err)
	}
	n, err := Filter(s, "src", "dst", func(_, v any) bool { return v.(int)%3 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 34 {
		t.Errorf("Filter wrote %d, want 34", n)
	}
	dst, _ := s.LookupTable("dst")
	if sz, _ := dst.Size(); sz != 34 {
		t.Errorf("dst size = %d", sz)
	}
	if _, ok, _ := dst.Get(4); ok {
		t.Error("non-matching key copied")
	}
}

func TestMapValues(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "src", 20, func(i int) any { return i })
	_, _ = s.CreateTable("dst", kvstore.ConsistentWith("src"))
	n, err := MapValues(s, "src", "dst", func(_, v any) any { return v.(int) * 10 })
	if err != nil || n != 20 {
		t.Fatalf("MapValues = %d, %v", n, err)
	}
	dst, _ := s.LookupTable("dst")
	if v, _, _ := dst.Get(7); v != 70 {
		t.Errorf("dst[7] = %v", v)
	}
}

func TestJoinMatchesAndCounts(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "left", 50, func(i int) any { return i })
	right, _ := s.CreateTable("right", kvstore.ConsistentWith("left"))
	for i := 25; i < 75; i++ {
		_ = right.Put(i, i*2)
	}
	var mu sync.Mutex
	got := map[any][2]any{}
	n, err := Join(s, "left", "right", func(p JoinPair) error {
		mu.Lock()
		got[p.Key] = [2]any{p.Left, p.Right}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("matches = %d, want 25 (keys 25..49)", n)
	}
	for k, lr := range got {
		i := k.(int)
		if i < 25 || i >= 50 || lr[0] != i || lr[1] != i*2 {
			t.Errorf("bad match %v -> %v", k, lr)
		}
	}
}

func TestJoinMovesNoData(t *testing.T) {
	// The §VI co-placement claim: a join over consistently partitioned
	// tables moves no bytes between partitions.
	m := &metrics.Collector{}
	s := setup(t, m)
	fill(t, s, "l", 200, func(i int) any { return i })
	r, _ := s.CreateTable("r", kvstore.ConsistentWith("l"))
	for i := 0; i < 200; i += 2 {
		_ = r.Put(i, "x")
	}
	before := m.Snapshot().MarshalledBytes
	n, err := Join(s, "l", "r", func(JoinPair) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("matches = %d", n)
	}
	if after := m.Snapshot().MarshalledBytes; after != before {
		t.Errorf("join marshalled %d bytes across partitions, want 0", after-before)
	}
}

func TestJoinRejectsMismatchedPartitioning(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "a", 10, func(i int) any { return i }, kvstore.WithParts(2))
	fill(t, s, "b", 10, func(i int) any { return i }, kvstore.WithParts(3))
	if _, err := Join(s, "a", "b", func(JoinPair) error { return nil }); !errors.Is(err, ErrNotCoPlaced) {
		t.Errorf("err = %v, want ErrNotCoPlaced", err)
	}
}

func TestJoinInto(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "jl", 30, func(i int) any { return i })
	jr, _ := s.CreateTable("jr", kvstore.ConsistentWith("jl"))
	for i := 0; i < 30; i++ {
		_ = jr.Put(i, i+100)
	}
	_, _ = s.CreateTable("jd", kvstore.ConsistentWith("jl"))
	n, err := JoinInto(s, "jl", "jr", "jd", func(_, l, r any) any {
		return l.(int) + r.(int)
	})
	if err != nil || n != 30 {
		t.Fatalf("JoinInto = %d, %v", n, err)
	}
	jd, _ := s.LookupTable("jd")
	if v, _, _ := jd.Get(5); v != 110 {
		t.Errorf("jd[5] = %v", v)
	}
}

func TestReduceAndCount(t *testing.T) {
	s := setup(t, nil)
	fill(t, s, "t", 100, func(i int) any { return i })
	sum, err := Reduce(s, "t", 0,
		func(acc any, _, v any) any { return acc.(int) + v.(int) },
		func(a, b any) any { return a.(int) + b.(int) })
	if err != nil || sum != 99*100/2 {
		t.Fatalf("Reduce = %v, %v", sum, err)
	}
	n, err := Count(s, "t", func(_, v any) bool { return v.(int) < 10 })
	if err != nil || n != 10 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	all, err := Count(s, "t", nil)
	if err != nil || all != 100 {
		t.Fatalf("Count(nil) = %d, %v", all, err)
	}
}

func TestMissingTables(t *testing.T) {
	s := setup(t, nil)
	if _, err := Filter(s, "nope", "also-nope", nil); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("Filter err = %v", err)
	}
	if _, err := Join(s, "nope", "x", nil); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("Join err = %v", err)
	}
	if _, err := Reduce(s, "nope", 0, nil, nil); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("Reduce err = %v", err)
	}
	fill(t, s, "src2", 5, func(i int) any { return i })
	if _, err := Filter(s, "src2", "missing-dst", func(any, any) bool { return true }); !errors.Is(err, kvstore.ErrNoTable) {
		t.Errorf("Filter missing dst err = %v", err)
	}
}

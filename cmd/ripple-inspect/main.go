// Command ripple-inspect examines a Ripple disk store directory: it lists
// the stored tables with their part counts, sizes, and on-disk footprint,
// dumps table contents, and optionally compacts logs. It also analyzes
// profile dumps offline.
//
// Usage:
//
//	ripple-inspect -dir ./data                      # list tables
//	ripple-inspect -dir ./data -table users         # dump one table
//	ripple-inspect -dir ./data -table users -stats  # per-part statistics
//	ripple-inspect -dir ./data -table users -compact
//	ripple-inspect -dir ./data -table users -compact -trace spans.jsonl
//	ripple-inspect -profile trace.json              # skew/straggler report
//	ripple-inspect -profile trace.json -topk 20     # deeper straggler table
//	ripple-inspect -trace spans.jsonl               # list spans (no -dir)
//	ripple-inspect -trace spans.jsonl -lineage      # causal chains per trace
//	ripple-inspect -trace spans.jsonl -lineage -check
//	ripple-inspect -trace spans.jsonl -job pr -kind deliver -part 2
//	ripple-inspect -profile prof.json -trace spans.jsonl  # stragglers + hot edges
//	ripple-inspect -fleet engine.jsonl,s0.jsonl,s1.jsonl -out merged.json
//	ripple-inspect -fleet merged.json -check        # enclosure validation
//
// The store directory is opened read-write (compaction rewrites logs); table
// part counts are inferred from the log file names. With -dir and -trace, the
// store's span log (per-part log replay on open, compaction passes) is
// written as JSONL to the given file ('-' for stdout) before exit.
//
// -profile is a standalone mode: it reads a profile dump written by
// ripple-bench -profile or ripple.WriteChromeTrace (Chrome trace-event JSON
// or StepProfile JSONL — the format is sniffed), prints the skew/straggler
// report, and exits non-zero if the file is invalid or holds no records, so
// it doubles as a dump validator in CI. Adding -trace joins a span dump
// against the straggler ranking, attributing each straggler's load to its
// hottest incoming causal edges.
//
// -trace without -dir is the trace query mode: it reads a span dump (JSONL or
// OTLP JSON, sniffed; '-' for stdin) and prints the spans, filtered by -job,
// -step, -part, -kind, and the -from/-to time range (offsets from run start).
// With -lineage it reconstructs each trace's causal chain — loader through
// every step to the job end — and with -check it exits non-zero unless every
// chain is complete and at least one crosses a partition boundary, so CI can
// assert causal continuity end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"

	"ripple/internal/codec"
	"ripple/internal/diskstore"
	"ripple/internal/kvstore"
	"ripple/internal/profile"
	"ripple/internal/trace"
)

var logName = regexp.MustCompile(`^(.+)\.(\d+)\.log$`)

// tracer collects replay/compaction spans across every store this command
// opens; nil (no -trace flag) disables recording.
var tracer *trace.Tracer

func main() {
	var (
		dir       = flag.String("dir", "", "disk store directory")
		table     = flag.String("table", "", "table to inspect (default: list all)")
		stats     = flag.Bool("stats", false, "per-part statistics instead of a dump")
		compact   = flag.Bool("compact", false, "compact the table's logs")
		limit     = flag.Int("limit", 50, "maximum pairs to dump (0 = all)")
		traceFile = flag.String("trace", "", "with -dir: write replay/compaction spans as JSONL to this file ('-' for stdout); alone: read and query a span dump ('-' for stdin)")
		profFile  = flag.String("profile", "", "analyze a profile dump (Chrome trace or JSONL) and exit")
		topK      = flag.Int("topk", 10, "straggler parts and hot keys to rank with -profile")

		jobF    = flag.String("job", "", "trace query: keep spans of this job only")
		stepF   = flag.Int("step", anyCoord, "trace query: keep spans of this step only")
		partF   = flag.Int("part", anyCoord, "trace query: keep spans of this part only")
		kindF   = flag.String("kind", "", "trace query: keep spans of this kind only (e.g. deliver, part_compute)")
		fromF   = flag.Duration("from", 0, "trace query: keep spans at or after this offset from run start")
		toF     = flag.Duration("to", 0, "trace query: keep spans at or before this offset (0 = no upper bound)")
		lineage = flag.Bool("lineage", false, "trace query: reconstruct and print each trace's causal chain")
		check   = flag.Bool("check", false, "trace query: exit non-zero unless every chain is complete and one crosses parts; with -fleet: exit non-zero on enclosure violations")

		fleetF = flag.String("fleet", "", "fleet mode: merge engine+server span dumps (comma-separated, engine first) or validate one merged timeline")
		outF   = flag.String("out", "", "with -fleet: write the merged clock-aligned timeline as OTLP JSON to this file")
	)
	flag.Parse()
	if *fleetF != "" {
		if err := runFleet(*fleetF, *outF, *check); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *profFile != "" {
		if err := analyzeProfile(*profFile, *traceFile, *topK); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *dir == "" && *traceFile != "" {
		filter := spanFilter{job: *jobF, step: *stepF, part: *partF, from: *fromF, to: *toF}
		if *kindF != "" {
			k, ok := trace.KindByName(*kindF)
			if !ok {
				log.Fatalf("unknown span kind %q", *kindF)
			}
			filter.kind, filter.kindSet = k, true
		}
		if err := queryTrace(*traceFile, filter, *lineage, *check); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceFile != "" {
		tracer = trace.New(trace.DefaultCapacity)
		defer func() {
			if err := dumpTrace(*traceFile); err != nil {
				log.Fatalf("trace dump: %v", err)
			}
		}()
	}

	tables, err := discoverTables(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(tables) == 0 {
		fmt.Println("no table logs found")
		return
	}

	if *table == "" {
		listTables(*dir, tables)
		return
	}
	parts, ok := tables[*table]
	if !ok {
		log.Fatalf("no logs for table %q under %s", *table, *dir)
	}
	store, err := diskstore.New(*dir, diskstore.WithParts(parts), diskstore.WithTracer(tracer))
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = store.Close() }()
	tab, err := store.CreateTable(*table, kvstore.WithParts(parts))
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *compact:
		before, _ := store.LogSize(*table)
		if err := store.Compact(*table); err != nil {
			log.Fatal(err)
		}
		after, _ := store.LogSize(*table)
		fmt.Printf("compacted %q: %d -> %d bytes (%.0f%% reclaimed)\n",
			*table, before, after, 100*float64(before-after)/float64(max64(before, 1)))
	case *stats:
		printStats(store, tab, parts)
	default:
		dump(tab, *limit)
	}
}

// discoverTables maps table names to their part counts from log file names.
func discoverTables(dir string) (map[string]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", dir, err)
	}
	tables := map[string]int{}
	for _, e := range entries {
		m := logName.FindStringSubmatch(filepath.Base(e.Name()))
		if m == nil {
			continue
		}
		part, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		if part+1 > tables[m[1]] {
			tables[m[1]] = part + 1
		}
	}
	return tables, nil
}

func listTables(dir string, tables map[string]int) {
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%-32s %6s %10s %12s\n", "TABLE", "PARTS", "PAIRS", "LOG BYTES")
	for _, name := range names {
		parts := tables[name]
		store, err := diskstore.New(dir, diskstore.WithParts(parts), diskstore.WithTracer(tracer))
		if err != nil {
			log.Fatal(err)
		}
		tab, err := store.CreateTable(name, kvstore.WithParts(parts))
		if err != nil {
			fmt.Printf("%-32s %6d %10s %12s  (unreadable: %v)\n", name, parts, "?", "?", err)
			_ = store.Close()
			continue
		}
		n, _ := tab.Size()
		bytes, _ := store.LogSize(name)
		fmt.Printf("%-32s %6d %10d %12d\n", name, parts, n, bytes)
		_ = store.Close()
	}
}

func printStats(store *diskstore.Store, tab kvstore.Table, parts int) {
	fmt.Printf("%-6s %10s\n", "PART", "PAIRS")
	total := 0
	for p := 0; p < parts; p++ {
		res, err := store.RunAgent(tab.Name(), p, func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View(tab.Name())
			if err != nil {
				return nil, err
			}
			return view.Len()
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %10d\n", p, res.(int))
		total += res.(int)
	}
	bytes, _ := store.LogSize(tab.Name())
	fmt.Printf("total  %10d pairs, %d log bytes\n", total, bytes)
}

func dump(tab kvstore.Table, limit int) {
	type pair struct{ k, v any }
	var pairs []pair
	err := kvstore.EnumerateAll(tab, func(k, v any) (bool, error) {
		pairs = append(pairs, pair{k, v})
		return false, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(pairs, func(i, j int) bool { return codec.CompareKeys(pairs[i].k, pairs[j].k) < 0 })
	for i, p := range pairs {
		if limit > 0 && i >= limit {
			fmt.Printf("... and %d more (use -limit 0 for all)\n", len(pairs)-limit)
			return
		}
		fmt.Printf("%v\t%v\n", p.k, p.v)
	}
}

// analyzeProfile reads a profile dump and prints the skew/straggler report.
// An unreadable file or one with no records is an error, so CI can use this
// as a validity check on emitted traces. With a span dump alongside, each
// straggler is attributed to its hottest incoming causal edges.
func analyzeProfile(path, spanPath string, topK int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	profs, err := profile.Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(profs) == 0 {
		return fmt.Errorf("%s: no step profiles in dump", path)
	}
	rep := profile.Analyze(profs, nil, topK)
	if spanPath != "" {
		spans, err := readSpans(spanPath)
		if err != nil {
			return err
		}
		profile.AttachLineage(rep, spans)
	}
	fmt.Printf("%s: %d step profiles\n\n", path, len(profs))
	profile.WriteText(os.Stdout, rep)
	return nil
}

// anyCoord is the "unset" sentinel for -step/-part filters; real coordinates
// (including the loader's -1) never reach it.
const anyCoord = -1 << 30

// spanFilter is the trace query's predicate.
type spanFilter struct {
	job        string
	step, part int
	kind       trace.Kind
	kindSet    bool
	from, to   time.Duration
}

func (f spanFilter) keep(s trace.Span) bool {
	if f.job != "" && s.Job != f.job {
		return false
	}
	if f.step != anyCoord && s.Step != f.step {
		return false
	}
	if f.part != anyCoord && s.Part != f.part {
		return false
	}
	if f.kindSet && s.Kind != f.kind {
		return false
	}
	if s.At < f.from {
		return false
	}
	if f.to > 0 && s.At > f.to {
		return false
	}
	return true
}

// readSpans loads a span dump (JSONL or OTLP JSON, sniffed) from a file or
// stdin ("-").
func readSpans(path string) ([]trace.Span, error) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	spans, err := trace.Parse(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}

// queryTrace is the standalone trace mode: filter and print spans, or
// reconstruct causal chains. Chains are always built from the unfiltered
// dump — a -kind filter must not punch holes in lineage — while the listing
// respects every filter.
func queryTrace(path string, filter spanFilter, lineage, check bool) error {
	spans, err := readSpans(path)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: no spans in dump", path)
	}

	if lineage || check {
		traces := trace.Traces(spans)
		if len(traces) == 0 {
			return fmt.Errorf("%s: no sampled traces in dump (was the run traced?)", path)
		}
		var incomplete int
		var crossed bool
		for _, id := range traces {
			chain := trace.BuildChain(spans, id)
			if filter.job != "" && chain.Job != filter.job {
				continue
			}
			if err := chain.WriteLineage(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			if chain.Complete() != nil {
				incomplete++
			}
			if chain.CrossPart() {
				crossed = true
			}
		}
		if check {
			if incomplete > 0 {
				return fmt.Errorf("%d of %d causal chains incomplete", incomplete, len(traces))
			}
			if !crossed {
				return fmt.Errorf("no causal chain crosses a partition boundary")
			}
			fmt.Printf("ok: %d causal chain(s) complete, partition boundary crossed\n", len(traces))
		}
		return nil
	}

	kept := 0
	for _, s := range spans {
		if !filter.keep(s) {
			continue
		}
		kept++
		line := fmt.Sprintf("%8d %-12s job=%s step=%d part=%d n=%d at=%v",
			s.Seq, s.Kind, s.Job, s.Step, s.Part, s.N, s.At)
		if s.Dur != 0 {
			line += fmt.Sprintf(" dur=%v", s.Dur)
		}
		if s.Trace != 0 {
			line += fmt.Sprintf(" trace=%016x span=%016x", s.Trace, s.Span)
			if s.Parent != 0 {
				line += fmt.Sprintf(" parent=%016x", s.Parent)
			}
		}
		fmt.Println(line)
	}
	fmt.Fprintf(os.Stderr, "%d of %d spans matched\n", kept, len(spans))
	return nil
}

// dumpTrace writes the collected spans as JSONL to path ("-" for stdout).
func dumpTrace(path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		out = f
	}
	if err := tracer.WriteJSONL(out); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d trace spans to %s\n", tracer.Len(), path)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

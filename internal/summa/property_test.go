package summa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ripple/internal/matrix"
	"ripple/internal/memstore"
)

// TestMultiplyCorrectnessProperty: random matrix shapes, grid sizes, and
// execution modes all yield the direct product.
func TestMultiplyCorrectnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 2 + rng.Intn(3)
		rows := g + rng.Intn(20) + g
		inner := g + rng.Intn(20) + g
		cols := g + rng.Intn(20) + g
		synchronized := rng.Intn(2) == 0

		a := matrix.Random(rng, rows, inner)
		b := matrix.Random(rng, inner, cols)
		store := memstore.New(memstore.WithParts(g * g))
		defer func() { _ = store.Close() }()
		out, err := Multiply(store, Config{Grid: g, Synchronized: synchronized}, a, b)
		if err != nil {
			return false
		}
		direct, err := a.Mul(b)
		if err != nil {
			return false
		}
		return out.C.EqualWithin(direct, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestScheduleTotalsProperty: the pacing model always schedules exactly G³
// multiplications, in at most the serial bound of steps.
func TestScheduleTotalsProperty(t *testing.T) {
	f := func(raw uint8) bool {
		g := 2 + int(raw)%7
		sched := Schedule(g)
		total := 0
		for _, c := range sched {
			total += c
		}
		if total != g*g*g {
			return false
		}
		// Never slower than fully serial execution, never faster than the
		// per-component minimum of G steps.
		return len(sched) >= g && len(sched) <= g*g*g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Command quickstart is the smallest end-to-end Ripple program: it runs a
// K/V EBSP job (a token-passing ring that demonstrates messages, state,
// selective enablement, and aggregators) and then the classic word count on
// the MapReduce layer — both against the in-memory store.
//
// With -profile out.json, both jobs run under the step profiler and their
// per-(step, part) timeline is written as Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"ripple"
)

// profiler records both demos' step profiles when -profile is set; nil
// disables recording.
var profiler *ripple.Profiler

func main() {
	profileFile := flag.String("profile", "", "write a Chrome trace of per-part step profiles to this file")
	flag.Parse()
	if *profileFile != "" {
		profiler = ripple.NewProfiler(0)
	}
	if err := ringDemo(); err != nil {
		log.Fatalf("ring demo: %v", err)
	}
	if err := wordCountDemo(); err != nil {
		log.Fatalf("word count demo: %v", err)
	}
	if *profileFile != "" {
		if err := writeProfile(*profileFile); err != nil {
			log.Fatalf("profile: %v", err)
		}
	}
}

// writeProfile dumps the recorded step profiles as a Chrome trace.
func writeProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := ripple.WriteProfileChromeTrace(f, profiler.Snapshot()); err != nil {
		return err
	}
	fmt.Printf("wrote %d step profiles to %s\n", profiler.Len(), path)
	return nil
}

// ringDemo passes a hop counter around a ring of components. Only the
// component holding the token runs in each step — selective enablement at
// work — while an aggregator tracks the total hops.
func ringDemo() error {
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store, ripple.WithProfiler(profiler))

	const ringSize, laps = 5, 3
	job := &ripple.Job{
		Name:        "ring",
		StateTables: []string{"ring_state"},
		Aggregators: map[string]ripple.Aggregator{"hops": ripple.IntMax{}},
		Compute: ripple.ComputeFunc(func(ctx *ripple.Context) bool {
			for _, m := range ctx.InputMessages() {
				hop := m.(int)
				ctx.WriteState(0, hop)          // remember the last hop seen
				ctx.AggregateValue("hops", hop) // the highest hop number reached
				if hop < ringSize*laps {
					next := (ctx.Key().(int) + 1) % ringSize
					ctx.Send(next, hop+1)
				}
			}
			return false
		}),
		Loaders: []ripple.Loader{&ripple.MessageLoader{
			Messages: []ripple.InitialMessage{{Key: 0, Message: 1}},
		}},
	}
	res, err := engine.Run(job)
	if err != nil {
		return err
	}
	fmt.Printf("ring: %d components, %d laps -> %d steps, token made %v hops\n",
		ringSize, laps, res.Steps, res.Aggregates["hops"])
	return nil
}

// wordCountDemo runs word count on the MapReduce layer (itself implemented
// on K/V EBSP).
func wordCountDemo() error {
	store := ripple.NewMemStore(ripple.MemParts(4))
	defer func() { _ = store.Close() }()
	engine := ripple.NewEngine(store, ripple.WithProfiler(profiler))

	docs, err := store.CreateTable("docs")
	if err != nil {
		return err
	}
	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick thinking wins the day",
	}
	for i, line := range corpus {
		if err := docs.Put(i, line); err != nil {
			return err
		}
	}

	job := &ripple.MapReduceJob{
		Name:   "wordcount",
		Input:  "docs",
		Output: "counts",
		Mapper: ripple.MapperFunc(func(_, value any, emit ripple.Emitter) error {
			for _, w := range strings.Fields(value.(string)) {
				emit(w, 1)
			}
			return nil
		}),
		Combiner: func(_, a, b any) any { return a.(int) + b.(int) },
		Reducer: ripple.ReducerFunc(func(key any, values []any, emit ripple.Emitter) error {
			total := 0
			for _, v := range values {
				total += v.(int)
			}
			emit(key, total)
			return nil
		}),
	}
	if _, err := ripple.RunMapReduce(engine, job); err != nil {
		return err
	}

	out, _ := store.LookupTable("counts")
	type wc struct {
		word  string
		count int
	}
	var counts []wc
	if _, err := out.EnumeratePairs(ripple.PairConsumerFuncs{
		ConsumeFn: func(k, v any) (bool, error) {
			counts = append(counts, wc{word: k.(string), count: v.(int)})
			return false, nil
		},
	}); err != nil {
		return err
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].word < counts[j].word
	})
	fmt.Println("word count (top 5):")
	for i, c := range counts {
		if i == 5 {
			break
		}
		fmt.Printf("  %-8s %d\n", c.word, c.count)
	}
	return nil
}

package mq

import (
	"testing"
	"time"

	"ripple/internal/memstore"
	"ripple/internal/metrics"
)

func TestQueueDepthGauge(t *testing.T) {
	store := memstore.New(memstore.WithParts(3))
	t.Cleanup(func() { _ = store.Close() })
	tab, err := store.CreateTable("placement")
	if err != nil {
		t.Fatal(err)
	}
	col := &metrics.Collector{}
	sys := NewSystem(WithMetrics(col))
	qs, err := sys.CreateQueueSet("q", tab)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		if err := qs.Put(1, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := qs.PutLocal(2, "x"); err != nil {
		t.Fatal(err)
	}
	if got := col.QueueDepths().Load(1); got != 4 {
		t.Errorf("part 1 depth after puts = %d, want 4", got)
	}
	if got := col.QueueDepths().Load(2); got != 1 {
		t.Errorf("part 2 depth after local put = %d, want 1", got)
	}

	r := readerFor(qs, 1)
	if _, ok, _ := r.Read(time.Second); !ok {
		t.Fatal("read failed")
	}
	if got := col.QueueDepths().Load(1); got != 3 {
		t.Errorf("part 1 depth after read = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := r.TryRead(); !ok {
			t.Fatal("try-read failed")
		}
	}
	if got := col.QueueDepths().Load(1); got != 0 {
		t.Errorf("part 1 depth drained = %d, want 0", got)
	}
	if got := col.QueueDepths().Total(); got != 1 {
		t.Errorf("total depth = %d, want 1 (part 2 untouched)", got)
	}
}

func TestQueueDepthGaugeWithoutMetrics(t *testing.T) {
	// No collector: the gauge path must be a silent no-op.
	store := memstore.New(memstore.WithParts(2))
	t.Cleanup(func() { _ = store.Close() })
	tab, err := store.CreateTable("placement")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewSystem().CreateQueueSet("q", tab)
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Put(0, "msg"); err != nil {
		t.Fatal(err)
	}
	r := readerFor(qs, 0)
	if msg, ok, _ := r.TryRead(); !ok || msg != "msg" {
		t.Fatalf("read = %v, %v", msg, ok)
	}
}

// Package mq implements Ripple's message-queuing SPI (paper §III-B).
//
// The abstraction is the queue set: a queuing client can create and delete
// queue sets; a queue set is placed like some given key/value table — there
// is a queue per part of the table. A queue set can run a piece of mobile
// client code in each part, and that client code can read (with a timeout)
// from the local queue of the set. Messages can be put into a given queue of
// a queue set from anywhere in the system.
//
// The implementation here is the generic one the paper describes (§IV-B):
// it works against any kvstore.Table for placement. Queues are unbounded and
// FIFO, which — together with one writer goroutine per sender — preserves
// the per-(sender,receiver) ordering the no-sync execution strategy relies
// on. Cross-part puts optionally marshal the payload to emulate the network.
package mq

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ripple/internal/codec"
	"ripple/internal/kvstore"
	"ripple/internal/metrics"
)

// Common errors.
var (
	// ErrClosed is returned for operations on a closed queue set.
	ErrClosed = errors.New("mq: queue set is closed")
	// ErrNoQueue is returned for out-of-range queue indices.
	ErrNoQueue = errors.New("mq: no such queue")
	// ErrExists is returned when creating a queue set whose name is taken.
	ErrExists = errors.New("mq: queue set already exists")
	// ErrTransient marks a transient delivery failure injected by a fault
	// layer (or raised by a flaky transport): the message was not delivered
	// and the Put may safely be retried.
	ErrTransient = errors.New("mq: transient delivery failure")
)

// Fault describes the injected behavior of one cross-part Put: fail it, delay
// its delivery, and/or deliver extra duplicate copies. The zero Fault is a
// normal delivery.
type Fault struct {
	// Err, when non-nil, fails the Put with this error; the message is not
	// delivered. Injectors should wrap ErrTransient for retryable faults.
	Err error
	// Delay adds extra delivery latency (on top of the system's emulated
	// network latency). Delivery order per (sender, queue) is preserved.
	Delay time.Duration
	// Duplicates delivers this many extra copies of the message immediately
	// after the original (adjacent, so per-sender FIFO is preserved).
	Duplicates int
}

// FaultInjector decides the fault for each cross-part Put. Implementations
// must be safe for concurrent use.
type FaultInjector interface {
	PutFault(set string, queue int) Fault
}

// Queuing is the queuing SPI of the paper (§III-B): create and delete queue
// sets. *System is the in-process implementation; transports provide
// networked ones. The engine programs against this interface, so the queuing
// layer is swappable exactly like the store.
type Queuing interface {
	// CreateQueueSet creates a queue set placed like the given table: one
	// queue per part of the table.
	CreateQueueSet(name string, like kvstore.Table) (Set, error)
	// DeleteQueueSet closes and removes a queue set.
	DeleteQueueSet(name string) error
}

// Set is a placed set of unbounded FIFO queues, one per part of the placement
// table. Implementations must preserve per-(sender,queue) FIFO order — the
// no-sync execution strategy depends on it.
type Set interface {
	// Name returns the queue set's name.
	Name() string
	// Queues reports the number of queues (= parts of the placement table).
	Queues() int
	// Put delivers a message to queue q from anywhere in the system; the
	// payload crosses a partition boundary. Calls from a single goroutine to
	// a single queue are delivered in order.
	Put(q int, msg any) error
	// PutLocal delivers without marshalling, for senders already collocated
	// with the destination part.
	PutLocal(q int, msg any) error
	// Run dispatches the worker to every queue in parallel and blocks until
	// all workers return.
	Run(w Worker) error
	// ReaderFor returns a read handle on queue q, for callers that manage
	// their own worker scheduling (e.g. transport servers draining queues on
	// behalf of remote readers).
	ReaderFor(q int) (Reader, error)
	// Close wakes all blocked readers and rejects future puts.
	Close() error
}

// Reader is the mobile client code's handle to its local queue.
type Reader interface {
	// Queue reports which queue this reader drains.
	Queue() int
	// Read dequeues the next message, waiting up to timeout. ok is false when
	// the timeout elapsed with no message available. Once the set is closed
	// and the queue drained, Read returns ErrClosed (already-queued messages
	// are still delivered first).
	Read(timeout time.Duration) (msg any, ok bool, err error)
	// TryRead dequeues without waiting. The error contract matches Read.
	TryRead() (msg any, ok bool, err error)
	// Len reports the number of queued messages.
	Len() int
}

// Worker is mobile client code run against one queue of the set.
type Worker func(r Reader) error

// Interface conformance of the in-process implementation.
var (
	_ Queuing = (*System)(nil)
	_ Set     = (*QueueSet)(nil)
	_ Reader  = (*localReader)(nil)
)

// System manages queue sets. One System is typically shared per store.
type System struct {
	marshal bool
	latency time.Duration
	metrics *metrics.Collector
	faults  FaultInjector

	mu   sync.Mutex
	sets map[string]*QueueSet
}

// SystemOption configures a System.
type SystemOption func(*System)

// WithMetrics attaches a metrics collector.
func WithMetrics(m *metrics.Collector) SystemOption {
	return func(s *System) { s.metrics = m }
}

// WithoutMarshalling disables payload marshalling on cross-part puts.
func WithoutMarshalling() SystemOption {
	return func(s *System) { s.marshal = false }
}

// WithLatency adds an emulated network latency to every cross-part Put.
func WithLatency(d time.Duration) SystemOption {
	return func(s *System) {
		if d > 0 {
			s.latency = d
		}
	}
}

// WithFaults installs a fault injector consulted on every cross-part Put.
func WithFaults(fi FaultInjector) SystemOption {
	return func(s *System) { s.faults = fi }
}

// NewSystem creates a queue-set manager.
func NewSystem(opts ...SystemOption) *System {
	s := &System{marshal: true, sets: make(map[string]*QueueSet)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// CreateQueueSet creates a queue set placed like the given table: one queue
// per part of the table.
func (s *System) CreateQueueSet(name string, like kvstore.Table) (Set, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sets[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	qs := newQueueSet(name, like.Parts(), s)
	s.sets[name] = qs
	return qs, nil
}

// DeleteQueueSet closes and removes a queue set.
func (s *System) DeleteQueueSet(name string) error {
	s.mu.Lock()
	qs, ok := s.sets[name]
	delete(s.sets, name)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("mq: %w: %q", ErrNoQueue, name)
	}
	return qs.Close()
}

// QueueSet is a placed set of unbounded FIFO queues, one per part.
type QueueSet struct {
	name   string
	system *System
	queues []*queue

	mu     sync.Mutex
	closed bool
}

func newQueueSet(name string, parts int, system *System) *QueueSet {
	qs := &QueueSet{name: name, system: system}
	for p := 0; p < parts; p++ {
		qs.queues = append(qs.queues, newQueue())
	}
	return qs
}

// Name returns the queue set's name.
func (qs *QueueSet) Name() string { return qs.name }

// Queues reports the number of queues (= parts of the placement table).
func (qs *QueueSet) Queues() int { return len(qs.queues) }

// Put delivers a message to queue q. It may be called from anywhere in the
// system; the payload crosses a partition boundary (marshalled, when the
// system marshals). Calls from a single goroutine to a single queue are
// delivered in order. Put on a closed set returns ErrClosed; a close racing
// with an in-flight Put either delivers the message or reports ErrClosed —
// never a silent drop.
func (qs *QueueSet) Put(q int, msg any) error {
	if q < 0 || q >= len(qs.queues) {
		return fmt.Errorf("%w: %d of %d", ErrNoQueue, q, len(qs.queues))
	}
	qs.mu.Lock()
	closed := qs.closed
	qs.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var fault Fault
	if qs.system != nil && qs.system.faults != nil {
		fault = qs.system.faults.PutFault(qs.name, q)
		if fault.Err != nil {
			return fault.Err
		}
	}
	if qs.system != nil && qs.system.marshal {
		out, n, err := codec.RoundTrip(msg)
		if err != nil {
			return err
		}
		qs.system.metrics.AddMarshalledBytes(int64(n))
		msg = out
	}
	var delay time.Duration
	if qs.system != nil {
		delay = qs.system.latency
	}
	delay += fault.Delay
	for c := 0; c <= fault.Duplicates; c++ {
		// Latency, not occupancy: the sender continues immediately and the
		// message arrives after the emulated network delay, in FIFO order —
		// even a zero-delay message cannot overtake earlier delayed ones. A
		// message still in flight when the set closes is lost with the
		// network, as on a real wire; only the synchronous hand-off reports
		// ErrClosed.
		if !qs.queues[q].putOrdered(msg, delay) {
			return ErrClosed
		}
		qs.gaugeDepth(q)
	}
	return nil
}

// gaugeDepth publishes queue q's depth to the per-part queue-depth gauge.
// Queue sets sharing one collector overwrite each other per part; the gauge
// tracks the most recently active set, which during a no-sync run is the
// run's own.
func (qs *QueueSet) gaugeDepth(q int) {
	if qs.system != nil {
		qs.system.metrics.QueueDepths().Set(q, int64(qs.queues[q].len()))
	}
}

// PutLocal delivers without marshalling, for senders already collocated with
// the destination part (e.g. a worker enqueuing to its own queue).
func (qs *QueueSet) PutLocal(q int, msg any) error {
	if q < 0 || q >= len(qs.queues) {
		return fmt.Errorf("%w: %d of %d", ErrNoQueue, q, len(qs.queues))
	}
	qs.mu.Lock()
	closed := qs.closed
	qs.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !qs.queues[q].put(msg) {
		return ErrClosed
	}
	qs.gaugeDepth(q)
	return nil
}

// localReader is the in-process Reader: a direct handle on one queue.
type localReader struct {
	queueSet *QueueSet
	index    int
}

func (r *localReader) Queue() int { return r.index }

func (r *localReader) Read(timeout time.Duration) (msg any, ok bool, err error) {
	msg, ok, closed := r.queueSet.queues[r.index].take(timeout)
	if ok {
		r.queueSet.gaugeDepth(r.index)
		return msg, true, nil
	}
	if closed {
		return nil, false, ErrClosed
	}
	return nil, false, nil
}

func (r *localReader) TryRead() (msg any, ok bool, err error) {
	return r.Read(0)
}

func (r *localReader) Len() int { return r.queueSet.queues[r.index].len() }

// ReaderFor returns a read handle on queue q.
func (qs *QueueSet) ReaderFor(q int) (Reader, error) {
	if q < 0 || q >= len(qs.queues) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoQueue, q, len(qs.queues))
	}
	return &localReader{queueSet: qs, index: q}, nil
}

// Run dispatches the worker to every part in parallel and blocks until all
// workers return. The first non-nil worker error is returned (all workers
// still run to completion).
func (qs *QueueSet) Run(w Worker) error {
	errs := make([]error, len(qs.queues))
	var wg sync.WaitGroup
	for i := range qs.queues {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w(&localReader{queueSet: qs, index: i})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close wakes all blocked readers and rejects future puts.
func (qs *QueueSet) Close() error {
	qs.mu.Lock()
	if qs.closed {
		qs.mu.Unlock()
		return nil
	}
	qs.closed = true
	qs.mu.Unlock()
	for _, q := range qs.queues {
		q.close()
	}
	return nil
}

// queue is an unbounded FIFO with timed blocking take.
type queue struct {
	mu          sync.Mutex
	items       []any
	head        int
	notify      chan struct{} // closed+replaced on each put; readers wait on it
	closed      bool
	pending     []timedMsg // delayed deliveries, in arrival order
	dispatching bool
}

// timedMsg is a delayed delivery.
type timedMsg struct {
	msg any
	at  time.Time
}

func newQueue() *queue {
	return &queue{notify: make(chan struct{})}
}

// putOrdered enqueues msg for delivery after delay, preserving arrival order
// (the pending list is drained sequentially, so FIFO per queue — and hence
// per sender — is maintained even when delays differ). A zero-delay message
// joins the pending list whenever the dispatcher is active, so it cannot
// overtake earlier delayed messages. It reports whether the message was
// accepted; a closed queue rejects it.
func (q *queue) putOrdered(msg any, delay time.Duration) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if delay <= 0 && !q.dispatching {
		q.items = append(q.items, msg)
		close(q.notify)
		q.notify = make(chan struct{})
		q.mu.Unlock()
		return true
	}
	q.pending = append(q.pending, timedMsg{msg: msg, at: time.Now().Add(delay)})
	if !q.dispatching {
		q.dispatching = true
		go q.dispatch()
	}
	q.mu.Unlock()
	return true
}

// dispatch drains the pending list in order, honoring each delivery time.
func (q *queue) dispatch() {
	for {
		q.mu.Lock()
		if q.closed || len(q.pending) == 0 {
			q.dispatching = false
			q.mu.Unlock()
			return
		}
		tm := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		if d := time.Until(tm.at); d > 0 {
			time.Sleep(d)
		}
		q.put(tm.msg)
	}
}

// put appends msg and reports whether it was accepted (false once closed).
func (q *queue) put(msg any) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, msg)
	// Wake all current waiters; they re-check under the lock.
	close(q.notify)
	q.notify = make(chan struct{})
	q.mu.Unlock()
	return true
}

// take dequeues the next message, waiting up to timeout. closed reports that
// the queue is closed AND drained — queued messages are delivered before the
// closed state is surfaced.
func (q *queue) take(timeout time.Duration) (msg any, ok, closed bool) {
	deadline := time.Now().Add(timeout)
	for {
		q.mu.Lock()
		if q.head < len(q.items) {
			msg := q.items[q.head]
			q.items[q.head] = nil
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			q.mu.Unlock()
			return msg, true, false
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false, true
		}
		ch := q.notify
		q.mu.Unlock()

		remain := time.Until(deadline)
		if timeout <= 0 || remain <= 0 {
			return nil, false, false
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return nil, false, false
		}
	}
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.notify)
	}
	q.mu.Unlock()
}

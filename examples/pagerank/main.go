// Command pagerank runs the paper's §V-A comparison at a configurable scale:
// PageRank over a biased power-law graph, computed by the direct K/V EBSP
// variant (one synchronization per iteration) and by the MapReduce-emulating
// variant (two synchronizations plus an extra round of I/O per iteration),
// reporting elapsed times, engine counters, and the agreement of the ranks.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"ripple"
	"ripple/internal/ebsp"
	"ripple/internal/memstore"
	"ripple/internal/metrics"
	"ripple/internal/pagerank"
	"ripple/internal/workload"
)

func main() {
	var (
		vertices   = flag.Int("vertices", 20000, "number of vertices")
		edges      = flag.Int("edges", 200000, "number of edges")
		iterations = flag.Int("iterations", 10, "PageRank iterations")
		damping    = flag.Float64("damping", 0.85, "damping factor")
		parts      = flag.Int("parts", 6, "store partitions (the paper used 6)")
		seed       = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	fmt.Printf("generating power-law graph: %d vertices, %d edges (seed %d)\n",
		*vertices, *edges, *seed)
	g, err := workload.PowerLawDirected(rand.New(rand.NewSource(*seed)), *vertices, *edges, 1.5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pagerank.Config{GraphTable: "graph", Damping: *damping, Iterations: *iterations}

	// Direct variant.
	mDirect := &metrics.Collector{}
	storeD := memstore.New(memstore.WithParts(*parts), memstore.WithMetrics(mDirect))
	defer func() { _ = storeD.Close() }()
	engineD := ripple.NewEngine(storeD, ebsp.WithMetrics(mDirect))
	tabD, err := pagerank.LoadGraph(storeD, "graph", g, *parts)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	resD, err := pagerank.RunDirect(engineD, cfg)
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(start)
	ranksD, err := pagerank.ReadRanks(tabD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct variant:    %8.3fs  (%d steps; %s)\n",
		directTime.Seconds(), resD.Steps, mDirect.Snapshot())

	// MapReduce variant.
	mMR := &metrics.Collector{}
	storeM := memstore.New(memstore.WithParts(*parts), memstore.WithMetrics(mMR))
	defer func() { _ = storeM.Close() }()
	engineM := ripple.NewEngine(storeM, ebsp.WithMetrics(mMR))
	tabM, err := pagerank.LoadGraph(storeM, "graph", g, *parts)
	if err != nil {
		log.Fatal(err)
	}
	if err := pagerank.SeedRanks(tabM); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	sumM, err := pagerank.RunMapReduce(engineM, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mrTime := time.Since(start)
	ranksM, err := pagerank.ReadRanks(tabM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapreduce variant: %8.3fs  (%d steps; %s)\n",
		mrTime.Seconds(), sumM.Steps, mMR.Snapshot())
	fmt.Printf("speedup of direct over mapreduce: %.2fx (paper: 15-19%% faster)\n",
		mrTime.Seconds()/directTime.Seconds())

	// Agreement and a peek at the top-ranked vertices.
	maxDiff := 0.0
	for v, r := range ranksD {
		if d := math.Abs(r - ranksM[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |direct - mapreduce| rank difference: %.3g\n", maxDiff)

	type vr struct {
		v int
		r float64
	}
	top := make([]vr, 0, len(ranksD))
	for v, r := range ranksD {
		top = append(top, vr{v, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 vertices by rank:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  vertex %-8d rank %.6f\n", top[i].v, top[i].r)
	}
}

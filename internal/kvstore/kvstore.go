// Package kvstore defines Ripple's System Programming Interface (SPI) to the
// fundamental storage+compute layer (paper §III).
//
// The SPI is deliberately narrow so that many key/value store implementations
// can satisfy it with modest adapter code. Data are organized into tables,
// each partitioned into parts (identified by successive integers starting at
// 0); parts may be replicated. Ripple moves responsibility for placing
// computation from the analytics layer to the storage layer: the store runs
// mobile code (agents, part/pair consumers) adjacent to the data it owns.
//
// Three implementations live in sibling packages:
//
//   - memstore: the paper's "parallel debugging store" — per-part service
//     goroutines with marshalling across emulated partition boundaries;
//   - gridstore: a WebSphere-eXtreme-Scale-like store with replication,
//     per-shard ACID transactions, and failure injection;
//   - diskstore: an LSM disk store (memtable, group-commit WAL, SSTables)
//     demonstrating SPI portability out of core.
package kvstore

import (
	"errors"
	"fmt"

	"ripple/internal/codec"
)

// Common SPI errors. Store implementations wrap these so callers can match
// with errors.Is regardless of the implementation in use.
var (
	// ErrTableExists is returned by CreateTable when the name is taken.
	ErrTableExists = errors.New("kvstore: table already exists")
	// ErrNoTable is returned when a named table does not exist.
	ErrNoTable = errors.New("kvstore: no such table")
	// ErrBadPart is returned for part indices outside [0, Parts).
	ErrBadPart = errors.New("kvstore: part index out of range")
	// ErrClosed is returned for operations on a closed store.
	ErrClosed = errors.New("kvstore: store is closed")
	// ErrNotCoPlaced is returned when an agent asks for a table that is not
	// partitioned consistently with the table it was dispatched against.
	ErrNotCoPlaced = errors.New("kvstore: table is not co-placed")
	// ErrShardFailed is returned when the primary replica of a shard has
	// failed and the operation must be retried after recovery.
	ErrShardFailed = errors.New("kvstore: shard primary failed")
	// ErrTxConflict is returned when a transaction cannot commit.
	ErrTxConflict = errors.New("kvstore: transaction conflict")
	// ErrTransient marks a transient infrastructure failure: the operation
	// did not take effect and may safely be retried. Fault-injection layers
	// and flaky transports wrap this so the engine can distinguish retryable
	// errors from fatal ones.
	ErrTransient = errors.New("kvstore: transient failure")
)

// Store is the key/value store SPI (paper §III-A). Implementations must be
// safe for concurrent use.
type Store interface {
	// Name identifies the implementation (for logs and experiment output).
	Name() string

	// DefaultParts is the part count used for tables that do not specify one.
	DefaultParts() int

	// CreateTable creates a new table. Use ConsistentWith to guarantee
	// consistent partitioning with an existing table (required when a
	// computation will join the two by key).
	CreateTable(name string, opts ...TableOption) (Table, error)

	// LookupTable returns a handle to an existing table.
	LookupTable(name string) (Table, bool)

	// DropTable removes a table and its data.
	DropTable(name string) error

	// Tables lists the names of existing tables in creation order.
	Tables() []string

	// RunAgent executes mobile code collocated with part `part` of `table`.
	// The agent receives a ShardView giving access to that part of every
	// table consistently partitioned with `table` (plus every ubiquitous
	// table). The returned value is whatever the agent returns.
	RunAgent(table string, part int, agent Agent) (any, error)

	// Close releases the store's resources. Operations after Close return
	// ErrClosed.
	Close() error
}

// Flusher is the optional durability extension of the Store SPI: stores that
// buffer appends implement it to make everything written so far durable on
// the underlying medium — for a disk-backed store that means fsynced, so the
// data survives power loss, not merely the process dying with its page cache
// intact. Callers with durability points (a checkpoint commit, a job-record
// write) call Flush through this interface and may treat its success as a
// hard commit point; stores whose writes are already synchronous simply
// don't implement it.
type Flusher interface {
	Flush() error
}

// Flush pushes s's buffered writes to its medium when s buffers at all; on
// stores without a buffer it is a no-op.
func Flush(s Store) error {
	if f, ok := s.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Agent is mobile code dispatched by the store to run adjacent to one part's
// data.
type Agent func(sv ShardView) (any, error)

// ShardView is an agent's window onto the co-placed parts it runs next to.
type ShardView interface {
	// Part is the part index this agent is collocated with.
	Part() int
	// View opens the local part of the named table. The table must be
	// co-placed with the table the agent was dispatched against, or
	// ubiquitous.
	View(table string) (PartView, error)
}

// PartView gives an agent direct, local (unmarshalled) access to one part of
// one table. A PartView is only valid inside the agent invocation that
// received it.
type PartView interface {
	// Table names the table this view belongs to.
	Table() string
	// Part is the part index.
	Part() int
	// Get returns the value for key, if present.
	Get(key any) (any, bool, error)
	// Put stores value under key.
	Put(key, value any) error
	// Delete removes key. Deleting an absent key is not an error.
	Delete(key any) error
	// Len reports the number of pairs in this part.
	Len() (int, error)
	// Enumerate visits every pair in this part in unspecified order. The
	// callback returns stop=true to end the enumeration early.
	Enumerate(fn PairFunc) error
	// EnumerateOrdered visits every pair in codec.CompareKeys order.
	EnumerateOrdered(fn PairFunc) error
}

// PairFunc is the callback for part-local enumeration.
type PairFunc func(key, value any) (stop bool, err error)

// Table is a handle to one partitioned key/value table. Get/Put/Delete may be
// called from anywhere; the store routes them (marshalling across emulated
// partition boundaries where the implementation does so).
type Table interface {
	// Name is the table's name within its store.
	Name() string
	// Parts is the number of parts.
	Parts() int
	// Ubiquitous reports whether this is a ubiquitous table (single logical
	// part, replicated everywhere, quick to read; paper §III-A).
	Ubiquitous() bool
	// PartOf maps a key to the part that owns it.
	PartOf(key any) int
	// Get fetches the value for key.
	Get(key any) (any, bool, error)
	// Put stores value under key.
	Put(key, value any) error
	// Delete removes key.
	Delete(key any) error
	// Size reports the total number of pairs across all parts.
	Size() (int, error)

	// EnumerateParts runs the consumer's ProcessPart once per part —
	// collocated with the data, in parallel — and combines the per-part
	// results with Combine.
	EnumerateParts(pc PartConsumer) (any, error)

	// EnumeratePairs streams every pair of every part through the consumer
	// (paper §III-A: per-part setup, per-pair consume with early stop,
	// per-part finish whose results are combined with peers).
	EnumeratePairs(pc PairConsumer) (any, error)
}

// PartConsumer is the callback object for Table.EnumerateParts.
type PartConsumer interface {
	// ProcessPart runs collocated with one part.
	ProcessPart(sv ShardView) (any, error)
	// Combine merges the results of two parts.
	Combine(a, b any) (any, error)
}

// PairConsumer is the callback object for Table.EnumeratePairs.
type PairConsumer interface {
	// SetupPart is called once before the pairs of a part are consumed.
	SetupPart(part int) error
	// ConsumePair consumes one pair; returning stop=true ends that part's
	// enumeration early.
	ConsumePair(key, value any) (stop bool, err error)
	// FinishPart is called once after a part's pairs; its result is combined
	// with its peers via Combine.
	FinishPart(part int) (any, error)
	// Combine merges the results of two parts.
	Combine(a, b any) (any, error)
}

// Transactional is an optional Store capability: an ACID transaction over all
// the entries in a shard of co-placed tables (paper §IV-A, fault tolerance).
// If the agent returns an error, every write it made is rolled back.
type Transactional interface {
	RunTransaction(table string, part int, agent Agent) (any, error)
}

// Replicated is an optional Store capability for stores that replicate parts
// and support failure injection (used by the fault-tolerance evaluation).
type Replicated interface {
	// Replicas reports the replication factor.
	Replicas() int
	// FailPrimary kills the primary replica of the given part of the named
	// partition group; in-flight uncommitted writes on that shard are lost
	// and a surviving replica is promoted.
	FailPrimary(table string, part int) error
}

// Healer is an optional Store capability: restore full replication for the
// named table's partition group after primary failures (re-seeding dead
// replicas from the surviving ones). The engine invokes it before re-running
// a job from its last checkpoint.
type Healer interface {
	Heal(table string) error
}

// FailureSensor is an optional Store capability: a monotonic count of primary
// failovers (promotions) the store has performed. The engine samples it
// around steps to detect that a failover happened mid-job.
type FailureSensor interface {
	Failovers() int64
}

// TraceBinder is an optional Store capability for transports: the engine
// binds the current run's causal trace ID so RPC frames carry it and the
// client- and server-side RPC spans join the run's causal chains. Binding
// trace 0 clears the ambient context.
type TraceBinder interface {
	BindTrace(traceID uint64)
}

// Config captures table creation options.
type Config struct {
	// Parts is the number of parts; 0 means the store default.
	Parts int
	// Ubiquitous requests a ubiquitous table (overrides Parts).
	Ubiquitous bool
	// ConsistentWith names an existing table whose partitioning this table
	// must share (same part count, same hasher ⇒ same key→part mapping).
	ConsistentWith string
	// Hasher controls key→part assignment; nil means codec.DefaultHasher.
	Hasher codec.Hasher
	// Ordered asks the store to maintain this table's parts in key order so
	// PartView.EnumerateOrdered is cheap. Stores may ignore it (then ordered
	// enumeration sorts on demand).
	Ordered bool
}

// TableOption configures CreateTable.
type TableOption func(*Config)

// WithParts sets the part count.
func WithParts(n int) TableOption { return func(c *Config) { c.Parts = n } }

// Ubiquitous requests a ubiquitous table.
func Ubiquitous() TableOption { return func(c *Config) { c.Ubiquitous = true } }

// ConsistentWith requests partitioning consistent with an existing table.
func ConsistentWith(table string) TableOption {
	return func(c *Config) { c.ConsistentWith = table }
}

// WithHasher sets the table's key hasher.
func WithHasher(h codec.Hasher) TableOption { return func(c *Config) { c.Hasher = h } }

// Ordered asks for key-ordered part storage.
func Ordered() TableOption { return func(c *Config) { c.Ordered = true } }

// ApplyOptions resolves a Config from options, filling defaults from the
// store. Implementations share it so option semantics cannot drift.
func ApplyOptions(defaultParts int, opts []TableOption) Config {
	cfg := Config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Hasher == nil {
		cfg.Hasher = codec.DefaultHasher{}
	}
	if cfg.Ubiquitous {
		cfg.Parts = 1
	} else if cfg.Parts <= 0 {
		cfg.Parts = defaultParts
	}
	return cfg
}

// CheckPart validates a part index.
func CheckPart(part, parts int) error {
	if part < 0 || part >= parts {
		return fmt.Errorf("%w: %d of %d", ErrBadPart, part, parts)
	}
	return nil
}

package gridstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ripple/internal/kvstore"
)

func newStore(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s := New(opts...)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestBasicOps(t *testing.T) {
	s := newStore(t)
	tab, err := s.CreateTable("t", kvstore.WithParts(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Put("k", 123); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tab.Get("k")
	if err != nil || !ok || v != 123 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	if err := tab.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab.Get("k"); ok {
		t.Error("value visible after delete")
	}
}

func TestDefaultPartsIsTen(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t")
	if tab.Parts() != 10 {
		t.Errorf("default parts = %d, want 10 (the paper's container count)", tab.Parts())
	}
}

func TestTransactionCommit(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(2))
	key := 0
	for tab.PartOf(key) != 1 {
		key++
	}
	res, err := s.RunTransaction("t", 1, func(sv kvstore.ShardView) (any, error) {
		view, err := sv.View("t")
		if err != nil {
			return nil, err
		}
		if err := view.Put(key, "committed"); err != nil {
			return nil, err
		}
		// Read-your-writes inside the transaction.
		v, ok, err := view.Get(key)
		if err != nil || !ok || v != "committed" {
			return nil, fmt.Errorf("read-your-writes failed: %v %v %v", v, ok, err)
		}
		return "done", nil
	})
	if err != nil || res != "done" {
		t.Fatalf("RunTransaction = %v, %v", res, err)
	}
	v, ok, _ := tab.Get(key)
	if !ok || v != "committed" {
		t.Errorf("after commit Get = %v, %v", v, ok)
	}
}

func TestTransactionRollbackOnError(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	_ = tab.Put("a", 1)
	boom := errors.New("boom")
	_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		_ = view.Put("a", 2)
		_ = view.Put("b", 3)
		_ = view.Delete("a")
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if v, _, _ := tab.Get("a"); v != 1 {
		t.Errorf("a = %v after rollback, want 1", v)
	}
	if _, ok, _ := tab.Get("b"); ok {
		t.Error("b visible after rollback")
	}
}

func TestTransactionAtomicAcrossTables(t *testing.T) {
	s := newStore(t)
	_, _ = s.CreateTable("x", kvstore.WithParts(1))
	_, _ = s.CreateTable("y", kvstore.ConsistentWith("x"))
	_, err := s.RunTransaction("x", 0, func(sv kvstore.ShardView) (any, error) {
		vx, _ := sv.View("x")
		vy, _ := sv.View("y")
		_ = vx.Put(1, "in-x")
		_ = vy.Put(1, "in-y")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	xt, _ := s.LookupTable("x")
	yt, _ := s.LookupTable("y")
	if v, _, _ := xt.Get(1); v != "in-x" {
		t.Errorf("x[1] = %v", v)
	}
	if v, _, _ := yt.Get(1); v != "in-y" {
		t.Errorf("y[1] = %v", v)
	}
}

func TestTransactionDeleteVisibility(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	_ = tab.Put("k", "v")
	_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		_ = view.Delete("k")
		if _, ok, _ := view.Get("k"); ok {
			t.Error("deleted key visible inside transaction")
		}
		n, _ := view.Len()
		if n != 0 {
			t.Errorf("Len inside tx = %d, want 0", n)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tab.Get("k"); ok {
		t.Error("key survived committed delete")
	}
}

func TestTransactionEnumerationSeesWriteSet(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t", kvstore.WithParts(1))
	_ = tab.Put(1, "old")
	_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		_ = view.Put(2, "new")
		seen := map[any]any{}
		err := view.Enumerate(func(k, v any) (bool, error) {
			seen[k] = v
			return false, nil
		})
		if err != nil {
			return nil, err
		}
		if len(seen) != 2 || seen[1] != "old" || seen[2] != "new" {
			t.Errorf("tx enumeration = %v", seen)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicationSurvivesPrimaryFailure(t *testing.T) {
	s := newStore(t, WithReplicas(2), WithParts(3))
	tab, _ := s.CreateTable("t")
	for i := 0; i < 90; i++ {
		if err := tab.Put(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 3; p++ {
		if err := s.FailPrimary("t", p); err != nil {
			t.Fatalf("FailPrimary(%d): %v", p, err)
		}
	}
	for i := 0; i < 90; i++ {
		v, ok, err := tab.Get(i)
		if err != nil || !ok || v != i*10 {
			t.Fatalf("after failover Get(%d) = %v %v %v", i, v, ok, err)
		}
	}
}

func TestFailPrimaryWithoutReplicaMakesShardUnavailable(t *testing.T) {
	s := newStore(t, WithParts(2))
	tab, _ := s.CreateTable("t")
	key := 0
	for tab.PartOf(key) != 0 {
		key++
	}
	_ = tab.Put(key, 1)
	if err := s.FailPrimary("t", 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("FailPrimary err = %v, want ErrNoReplica", err)
	}
	if _, _, err := tab.Get(key); !errors.Is(err, kvstore.ErrShardFailed) {
		t.Errorf("Get on failed shard err = %v", err)
	}
	if err := tab.Put(key, 2); !errors.Is(err, kvstore.ErrShardFailed) {
		t.Errorf("Put on failed shard err = %v", err)
	}
	// Heal restores availability (data for the dead shard is lost).
	if err := s.Heal("t"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Put(key, 3); err != nil {
		t.Errorf("Put after heal: %v", err)
	}
}

func TestHealRestoresReplication(t *testing.T) {
	s := newStore(t, WithReplicas(2), WithParts(1))
	tab, _ := s.CreateTable("t")
	_ = tab.Put("k", "v1")
	if err := s.FailPrimary("t", 0); err != nil {
		t.Fatal(err)
	}
	_ = tab.Put("k2", "v2")
	if err := s.Heal("t"); err != nil {
		t.Fatal(err)
	}
	// After heal we can fail over again and still see both keys.
	if err := s.FailPrimary("t", 0); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab.Get("k"); v != "v1" {
		t.Errorf("k = %v", v)
	}
	if v, _, _ := tab.Get("k2"); v != "v2" {
		t.Errorf("k2 = %v", v)
	}
}

func TestTransactionAbortedByFailover(t *testing.T) {
	s := newStore(t, WithReplicas(2), WithParts(1))
	tab, _ := s.CreateTable("t")
	_ = tab.Put("k", "before")
	_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, _ := sv.View("t")
		_ = view.Put("k", "during")
		// Primary dies while the transaction is open.
		if err := s.FailPrimary("t", 0); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if !errors.Is(err, kvstore.ErrShardFailed) {
		t.Fatalf("err = %v, want ErrShardFailed", err)
	}
	if v, _, _ := tab.Get("k"); v != "before" {
		t.Errorf("k = %v, want pre-transaction value", v)
	}
}

func TestConcurrentTransactionsSerialize(t *testing.T) {
	s := newStore(t, WithParts(1))
	tab, _ := s.CreateTable("t")
	_ = tab.Put("counter", 0)
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.RunTransaction("t", 0, func(sv kvstore.ShardView) (any, error) {
				view, _ := sv.View("t")
				v, _, err := view.Get("counter")
				if err != nil {
					return nil, err
				}
				return nil, view.Put("counter", v.(int)+1)
			})
			if err != nil {
				t.Errorf("tx: %v", err)
			}
		}()
	}
	wg.Wait()
	if v, _, _ := tab.Get("counter"); v != n {
		t.Errorf("counter = %v, want %d (transactions must serialize)", v, n)
	}
}

func TestRunAgentNonTransactional(t *testing.T) {
	s := newStore(t, WithParts(2))
	tab, _ := s.CreateTable("t")
	key := 0
	for tab.PartOf(key) != 0 {
		key++
	}
	_, err := s.RunAgent("t", 0, func(sv kvstore.ShardView) (any, error) {
		view, err := sv.View("t")
		if err != nil {
			return nil, err
		}
		return nil, view.Put(key, "direct")
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _, _ := tab.Get(key); v != "direct" {
		t.Errorf("agent write = %v", v)
	}
}

func TestEnumeratePartsParallelAndCombined(t *testing.T) {
	s := newStore(t, WithParts(4))
	tab, _ := s.CreateTable("t")
	for i := 0; i < 100; i++ {
		_ = tab.Put(i, 1)
	}
	res, err := tab.EnumerateParts(kvstore.PartConsumerFuncs{
		ProcessFn: func(sv kvstore.ShardView) (any, error) {
			view, err := sv.View("t")
			if err != nil {
				return nil, err
			}
			return view.Len()
		},
		CombineFn: func(a, b any) (any, error) { return a.(int) + b.(int), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.(int) != 100 {
		t.Errorf("combined = %v", res)
	}
}

func TestUbiquitousTableGridstore(t *testing.T) {
	s := newStore(t)
	u, err := s.CreateTable("u", kvstore.Ubiquitous())
	if err != nil {
		t.Fatal(err)
	}
	_ = u.Put("b", 7)
	_, _ = s.CreateTable("d", kvstore.WithParts(2))
	_, err = s.RunAgent("d", 1, func(sv kvstore.ShardView) (any, error) {
		view, err := sv.View("u")
		if err != nil {
			return nil, err
		}
		v, ok, err := view.Get("b")
		if err != nil || !ok || v != 7 {
			t.Errorf("ubiquitous read = %v %v %v", v, ok, err)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridSizeAndDrop(t *testing.T) {
	s := newStore(t, WithParts(3))
	tab, _ := s.CreateTable("t")
	for i := 0; i < 30; i++ {
		_ = tab.Put(i, i)
	}
	if n, _ := tab.Size(); n != 30 {
		t.Errorf("Size = %d", n)
	}
	if err := s.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LookupTable("t"); ok {
		t.Error("table visible after drop")
	}
}

func TestMarshallingIsolationGrid(t *testing.T) {
	s := newStore(t)
	tab, _ := s.CreateTable("t")
	val := []int{1, 2, 3}
	_ = tab.Put("k", val)
	val[0] = 99
	got, _, _ := tab.Get("k")
	if got.([]int)[0] != 1 {
		t.Error("store shares memory with caller")
	}
}

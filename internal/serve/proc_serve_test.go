package serve

// Process-level smoke for cmd/ripple-serve — the `make serve-smoke` gate. A
// real daemon child over a real disk store: submit PageRank over HTTP, stream
// its SSE events, SIGKILL the daemon mid-job, restart it on the same data
// directory, and require the job to resume and finish with the same result
// bytes as an uninterrupted control run. Then, against the restarted daemon:
// scrape /metrics, check the per-tenant quota as HTTP 429s, and cancel a
// running job with DELETE inside one barrier's worth of wall clock.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildServe(t *testing.T, dir string) string {
	t.Helper()
	bin := dir + "/ripple-serve"
	cmd := exec.Command("go", "build", "-o", bin, "ripple/cmd/ripple-serve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build ripple-serve: %v\n%s", err, out)
	}
	return bin
}

// serveProc is one spawned ripple-serve child.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

// kill SIGKILLs the daemon — a crash, not a graceful shutdown.
func (p *serveProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// stop shuts the daemon down gracefully (SIGTERM) and waits for exit.
func (p *serveProc) stop(t *testing.T) {
	t.Helper()
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		p.kill()
		t.Error("daemon did not exit on SIGTERM; killed")
	}
}

// spawnServe starts a daemon child and waits for its "listening" banner.
func spawnServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-log-level", "off"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start ripple-serve: %v", err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		for sc.Scan() { // keep draining so the child never blocks
		}
	}()
	select {
	case line, ok := <-lines:
		if !ok || !strings.HasPrefix(line, "listening ") {
			_ = cmd.Process.Kill()
			t.Fatalf("ripple-serve banner = %q", line)
		}
		return &serveProc{cmd: cmd, addr: strings.TrimPrefix(line, "listening ")}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("ripple-serve never printed its listening banner")
		return nil
	}
}

// httpJSON performs one request and decodes the JSON response body.
func httpJSON(t *testing.T, method, url, apiKey string, body string) (int, map[string]any) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m
}

// pollDone polls a job until it reaches a terminal status, returning the
// final record.
func pollDone(t *testing.T, p *serveProc, id string, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, rec := httpJSON(t, "GET", p.url("/v1/jobs/"+id), "", "")
		if code != 200 {
			t.Fatalf("GET job %s: %d %v", id, code, rec)
		}
		status, _ := rec["status"].(string)
		if status == want {
			return rec
		}
		switch status {
		case StatusDone, StatusFailed, StatusCanceled:
			t.Fatalf("job %s reached terminal %q (err %v), want %q", id, status, rec["error"], want)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return nil
}

func resultBytes(t *testing.T, p *serveProc, id string) string {
	t.Helper()
	resp, err := http.Get(p.url("/v1/jobs/" + id + "/result"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("result %s: %d %v %s", id, resp.StatusCode, err, raw)
	}
	return norm(t, raw)
}

func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke; skipped in -short")
	}
	bin := buildServe(t, t.TempDir())
	const jobBody = `{"workload":"pagerank","params":{"vertices":120,"edges":500,"iterations":40,"seed":42,"step_delay_ms":25}}`

	// Control: the same submission on a daemon that is never interrupted.
	// Both daemons assign it j1, so the derived seeds — and therefore the
	// result bytes — must agree.
	control := spawnServe(t, bin, "-data-dir", t.TempDir(), "-checkpoint-every", "3")
	code, sub := httpJSON(t, "POST", control.url("/v1/jobs"), "", jobBody)
	if code != http.StatusAccepted {
		t.Fatalf("control submit: %d %v", code, sub)
	}
	controlID := sub["id"].(string)
	pollDone(t, control, controlID, StatusDone)
	want := resultBytes(t, control, controlID)
	control.stop(t)

	// Victim daemon: same params over its own disk store.
	dataDir := t.TempDir()
	p1 := spawnServe(t, bin, "-data-dir", dataDir, "-checkpoint-every", "3")
	code, sub = httpJSON(t, "POST", p1.url("/v1/jobs"), "", jobBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// Stream SSE until the run is at least two checkpoint cadences in, then
	// SIGKILL the daemon mid-stream.
	sseResp, err := http.Get(p1.url("/v1/jobs/" + id + "/events"))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	sc := bufio.NewScanner(sseResp.Body)
	for sc.Scan() && steps < 8 {
		if strings.HasPrefix(sc.Text(), "event: step") {
			steps++
		}
	}
	_ = sseResp.Body.Close()
	if steps < 8 {
		t.Fatalf("SSE delivered only %d step events before the stream ended", steps)
	}
	p1.kill()

	// Restart on the same data directory: the job must still be listed,
	// marked resumed, and run to completion from its checkpoint with result
	// bytes identical to the control run.
	p2 := spawnServe(t, bin, "-data-dir", dataDir, "-checkpoint-every", "3",
		"-tenant-quota", "1", "-max-concurrent", "1")
	defer p2.stop(t)
	code, rec := httpJSON(t, "GET", p2.url("/v1/jobs/"+id), "", "")
	if code != 200 {
		t.Fatalf("restarted daemon lost job %s: %d %v", id, code, rec)
	}
	if resumed, _ := rec["resumed"].(bool); !resumed {
		t.Errorf("recovered job not marked resumed: %v", rec)
	}
	done := pollDone(t, p2, id, StatusDone)
	var res map[string]any
	_ = json.Unmarshal([]byte(mustJSON(t, done["result"])), &res)
	if resumed, _ := res["resumed"].(bool); !resumed {
		t.Errorf("resumed run fell back to a full rerun: %v", res["resumed"])
	}
	if got := resultBytes(t, p2, id); got != want {
		t.Errorf("resumed result diverged from the uninterrupted control run:\n%s\nvs\n%s", got, want)
	}

	// /metrics serves the engine's exposition from the same address.
	mresp, err := http.Get(p2.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	_ = mresp.Body.Close()
	if mresp.StatusCode != 200 || !strings.Contains(string(mbody), "ripple_barriers_total") {
		t.Errorf("/metrics scrape: %d, ripple_ series present=%v", mresp.StatusCode,
			strings.Contains(string(mbody), "ripple_"))
	}

	// Two-tenant quota (-tenant-quota 1): alpha's second live job is a 429;
	// beta is unaffected.
	slow := `{"workload":"pagerank","params":{"vertices":100,"iterations":2000,"step_delay_ms":20}}`
	code, a1 := httpJSON(t, "POST", p2.url("/v1/jobs"), "alpha", slow)
	if code != http.StatusAccepted {
		t.Fatalf("alpha submit: %d %v", code, a1)
	}
	if code, _ := httpJSON(t, "POST", p2.url("/v1/jobs"), "alpha", slow); code != http.StatusTooManyRequests {
		t.Errorf("alpha over quota: %d, want 429", code)
	}
	code, b1 := httpJSON(t, "POST", p2.url("/v1/jobs"), "beta", slow)
	if code != http.StatusAccepted {
		t.Fatalf("beta submit: %d %v", code, b1)
	}

	// HTTP cancel interrupts the running job within one barrier (a 20ms step
	// delay, not the minutes its 2000 iterations would take).
	aID := a1["id"].(string)
	pollDone(t, p2, aID, StatusRunning)
	start := time.Now()
	if code, _ := httpJSON(t, "DELETE", p2.url("/v1/jobs/"+aID), "", ""); code != 200 {
		t.Fatalf("cancel: %d", code)
	}
	pollDone(t, p2, aID, StatusCanceled)
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("cancel took %v", el)
	}
	if code, _ := httpJSON(t, "DELETE", p2.url("/v1/jobs/"+b1["id"].(string)), "", ""); code != 200 {
		t.Errorf("cancel beta: %d", code)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

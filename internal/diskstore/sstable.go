package diskstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ripple/internal/codec"
	"ripple/internal/metrics"
)

// SSTable layout (all integers big-endian):
//
//	data region:  [1B op][4B klen][4B vlen][key][value] ... grouped into
//	              ~sstBlockTarget-byte blocks at record boundaries
//	index block:  per data block: [4B klen][8B off][4B blen][first key]
//	bloom block:  bloomFilter.marshal()
//	footer (52B): [8B idxOff][8B idxLen][8B bloomOff][8B bloomLen]
//	              [8B entries][4B crc of the preceding 40B][8B magic]
//
// Records are sorted by codec.CompareKeys. The sparse index holds one entry
// per block (its first key), so a point read is one bloom probe, one binary
// search in memory, and at most one block-sized disk read.
const (
	sstMagic       = 0x52504c5353543101 // "RPLSST" v1
	sstFooterLen   = 52
	sstBlockTarget = 8 << 10
)

// sstWriter streams sorted records into a new SSTable file. The caller adds
// records in key order and then calls finish, which appends the index, bloom
// filter, and footer and fsyncs the file.
type sstWriter struct {
	f         *os.File
	w         *bufio.Writer
	path      string
	off       int64
	blockAt   int64 // start offset of the open block, -1 if none
	index     []byte
	lastIdxAt int // offset in index of the open block's entry
	bloom     *bloomFilter
	entries   int64
}

func newSSTWriter(path string, expectedEntries int) (*sstWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &sstWriter{
		f:       f,
		w:       bufio.NewWriterSize(f, 64<<10),
		path:    path,
		blockAt: -1,
		bloom:   newBloom(expectedEntries),
	}, nil
}

func (sw *sstWriter) add(op byte, kbuf, vbuf []byte) error {
	if sw.blockAt < 0 {
		// Opening a new block: remember its first key in the sparse index.
		// The block-length field is a placeholder until closeBlock
		// backpatches it.
		sw.blockAt = sw.off
		sw.lastIdxAt = len(sw.index)
		var pre [16]byte
		binary.BigEndian.PutUint32(pre[0:4], uint32(len(kbuf)))
		binary.BigEndian.PutUint64(pre[4:12], uint64(sw.off))
		sw.index = append(sw.index, pre[:]...)
		sw.index = append(sw.index, kbuf...)
	}
	var hdr [9]byte
	hdr[0] = op
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(kbuf)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(vbuf)))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := sw.w.Write(kbuf); err != nil {
		return err
	}
	if _, err := sw.w.Write(vbuf); err != nil {
		return err
	}
	sw.off += int64(len(hdr)) + int64(len(kbuf)) + int64(len(vbuf))
	sw.bloom.add(kbuf)
	sw.entries++
	if sw.off-sw.blockAt >= sstBlockTarget {
		sw.closeBlock()
	}
	return nil
}

// closeBlock backpatches the open block's length into its index entry.
func (sw *sstWriter) closeBlock() {
	if sw.blockAt < 0 {
		return
	}
	at := sw.lastIdxAt
	binary.BigEndian.PutUint32(sw.index[at+12:at+16], uint32(sw.off-sw.blockAt))
	sw.blockAt = -1
}

// finish appends index, bloom, and footer, fsyncs, and returns the file's
// total size. On error the half-written file is removed.
func (sw *sstWriter) finish() (size int64, retErr error) {
	defer func() {
		if retErr != nil {
			_ = sw.f.Close()
			_ = os.Remove(sw.path)
		}
	}()
	sw.closeBlock()
	idxOff := sw.off
	if _, err := sw.w.Write(sw.index); err != nil {
		return 0, err
	}
	bloomOff := idxOff + int64(len(sw.index))
	bloomBuf := sw.bloom.marshal()
	if _, err := sw.w.Write(bloomBuf); err != nil {
		return 0, err
	}
	var footer [sstFooterLen]byte
	binary.BigEndian.PutUint64(footer[0:8], uint64(idxOff))
	binary.BigEndian.PutUint64(footer[8:16], uint64(len(sw.index)))
	binary.BigEndian.PutUint64(footer[16:24], uint64(bloomOff))
	binary.BigEndian.PutUint64(footer[24:32], uint64(len(bloomBuf)))
	binary.BigEndian.PutUint64(footer[32:40], uint64(sw.entries))
	binary.BigEndian.PutUint32(footer[40:44], crc32.ChecksumIEEE(footer[:40]))
	binary.BigEndian.PutUint64(footer[44:52], sstMagic)
	if _, err := sw.w.Write(footer[:]); err != nil {
		return 0, err
	}
	if err := sw.w.Flush(); err != nil {
		return 0, err
	}
	if err := sw.f.Sync(); err != nil {
		return 0, err
	}
	if err := sw.f.Close(); err != nil {
		return 0, err
	}
	return bloomOff + int64(len(bloomBuf)) + sstFooterLen, nil
}

// idxEntry is one sparse-index slot: the decoded first key of a block plus
// the block's extent in the data region.
type idxEntry struct {
	key any
	off int64
	len int32
}

// sstable is an open, immutable run: file handle, decoded sparse index, and
// bloom filter. Runs are ordered newest-first in partLog.runs; level records
// how many compaction generations deep the run is.
type sstable struct {
	path    string
	file    *os.File
	seq     uint64
	level   int
	entries int64
	size    int64
	dataLen int64
	index   []idxEntry
	bloom   *bloomFilter
}

// errTornSST marks an SSTable that fails structural validation; openPartLog
// treats manifest-listed runs with this error as fatal (the manifest ordering
// guarantees a referenced run was durable before the manifest named it).
var errTornSST = errors.New("diskstore: torn or corrupt sstable")

func openSST(path string, seq uint64, level int) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	size := st.Size()
	if size < sstFooterLen {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s is %d bytes", errTornSST, path, size)
	}
	var footer [sstFooterLen]byte
	if _, err := f.ReadAt(footer[:], size-sstFooterLen); err != nil {
		_ = f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint64(footer[44:52]) != sstMagic {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s has bad magic", errTornSST, path)
	}
	if binary.BigEndian.Uint32(footer[40:44]) != crc32.ChecksumIEEE(footer[:40]) {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s footer checksum mismatch", errTornSST, path)
	}
	idxOff := int64(binary.BigEndian.Uint64(footer[0:8]))
	idxLen := int64(binary.BigEndian.Uint64(footer[8:16]))
	bloomOff := int64(binary.BigEndian.Uint64(footer[16:24]))
	bloomLen := int64(binary.BigEndian.Uint64(footer[24:32]))
	entries := int64(binary.BigEndian.Uint64(footer[32:40]))
	if idxOff < 0 || idxLen < 0 || bloomLen < 0 || bloomOff != idxOff+idxLen ||
		bloomOff+bloomLen+sstFooterLen != size {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s region extents inconsistent", errTornSST, path)
	}
	idxBuf := make([]byte, idxLen)
	if _, err := f.ReadAt(idxBuf, idxOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	index, err := decodeIndex(idxBuf)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s: %v", errTornSST, path, err)
	}
	bloomBuf := make([]byte, bloomLen)
	if _, err := f.ReadAt(bloomBuf, bloomOff); err != nil {
		_ = f.Close()
		return nil, err
	}
	bloom, err := unmarshalBloom(bloomBuf)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: %s: %v", errTornSST, path, err)
	}
	return &sstable{
		path:    path,
		file:    f,
		seq:     seq,
		level:   level,
		entries: entries,
		size:    size,
		dataLen: idxOff,
		index:   index,
		bloom:   bloom,
	}, nil
}

func decodeIndex(buf []byte) ([]idxEntry, error) {
	var out []idxEntry
	for len(buf) > 0 {
		if len(buf) < 16 {
			return nil, errors.New("short index entry")
		}
		klen := binary.BigEndian.Uint32(buf[0:4])
		off := int64(binary.BigEndian.Uint64(buf[4:12]))
		blen := int32(binary.BigEndian.Uint32(buf[12:16]))
		if int(klen) > len(buf)-16 {
			return nil, errors.New("index key overruns block")
		}
		key, err := codec.Decode(buf[16 : 16+klen])
		if err != nil {
			return nil, fmt.Errorf("index key undecodable: %v", err)
		}
		out = append(out, idxEntry{key: key, off: off, len: blen})
		buf = buf[16+klen:]
	}
	return out, nil
}

func (t *sstable) close() error {
	return t.file.Close()
}

// get probes this run for key. It returns the encoded value bytes (nil for a
// tombstone) and whether the key was present in this run at all. The encoded
// key bytes are compared for equality — codec encoding is deterministic, so
// byte equality matches the memtable's map-key equality.
func (t *sstable) get(key any, kbuf []byte, lsm *metrics.LSMStats) (vbuf []byte, tomb, found bool, err error) {
	lsm.AddBloomChecks(1)
	if !t.bloom.mayContain(kbuf) {
		lsm.AddBloomNegatives(1)
		return nil, false, false, nil
	}
	// Binary search: the last block whose first key is <= key.
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if codec.CompareKeys(t.index[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	cand := lo - 1
	if cand < 0 {
		lsm.AddBloomFalsePositives(1)
		return nil, false, false, nil
	}
	// CompareKeys can tie for keys that are not ==; extend the scan backward
	// over any tied boundary blocks so such a key is never missed.
	first := cand
	for first > 0 && codec.CompareKeys(t.index[first].key, key) == 0 {
		first--
	}
	for b := cand; b >= first; b-- {
		vbuf, tomb, found, err = t.scanBlock(t.index[b], kbuf, lsm)
		if err != nil || found {
			return vbuf, tomb, found, err
		}
	}
	lsm.AddBloomFalsePositives(1)
	return nil, false, false, nil
}

func (t *sstable) scanBlock(e idxEntry, kbuf []byte, lsm *metrics.LSMStats) (vbuf []byte, tomb, found bool, err error) {
	lsm.AddBlockReads(1)
	buf := make([]byte, e.len)
	if _, err := t.file.ReadAt(buf, e.off); err != nil {
		return nil, false, false, err
	}
	for len(buf) >= 9 {
		op := buf[0]
		klen := binary.BigEndian.Uint32(buf[1:5])
		vlen := binary.BigEndian.Uint32(buf[5:9])
		rec := 9 + int(klen) + int(vlen)
		if rec > len(buf) {
			return nil, false, false, fmt.Errorf("%w: %s record overruns block", errTornSST, t.path)
		}
		if bytes.Equal(buf[9:9+klen], kbuf) {
			if op == opDelete {
				return nil, true, true, nil
			}
			return buf[9+int(klen) : rec], false, true, nil
		}
		buf = buf[rec:]
	}
	return nil, false, false, nil
}

// sstIter streams a run's records in key order (used by compaction merges
// and full-part scans).
type sstIter struct {
	r    *bufio.Reader
	left int64
	t    *sstable

	op   byte
	key  any
	kbuf []byte
	vbuf []byte
	err  error
}

func (t *sstable) iter() *sstIter {
	return &sstIter{
		r:    bufio.NewReaderSize(io.NewSectionReader(t.file, 0, t.dataLen), 64<<10),
		left: t.dataLen,
		t:    t,
	}
}

// next advances to the next record, decoding its key. It returns false at
// the end of the data region or on error (recorded in it.err).
func (it *sstIter) next() bool {
	if it.err != nil || it.left <= 0 {
		return false
	}
	var hdr [9]byte
	if _, err := io.ReadFull(it.r, hdr[:]); err != nil {
		it.err = fmt.Errorf("%w: %s data region truncated: %v", errTornSST, it.t.path, err)
		return false
	}
	it.op = hdr[0]
	klen := binary.BigEndian.Uint32(hdr[1:5])
	vlen := binary.BigEndian.Uint32(hdr[5:9])
	buf := make([]byte, int(klen)+int(vlen))
	if _, err := io.ReadFull(it.r, buf); err != nil {
		it.err = fmt.Errorf("%w: %s data region truncated: %v", errTornSST, it.t.path, err)
		return false
	}
	it.kbuf = buf[:klen]
	it.vbuf = buf[klen:]
	key, err := codec.Decode(it.kbuf)
	if err != nil {
		it.err = fmt.Errorf("%w: %s key undecodable: %v", errTornSST, it.t.path, err)
		return false
	}
	it.key = key
	it.left -= 9 + int64(klen) + int64(vlen)
	return true
}

// scan visits every record of the run in key order.
func (t *sstable) scan(fn func(op byte, key any, kbuf, vbuf []byte) error) error {
	it := t.iter()
	for it.next() {
		if err := fn(it.op, it.key, it.kbuf, it.vbuf); err != nil {
			return err
		}
	}
	return it.err
}

package metrics

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"ripple/internal/trace"
)

// TestExpositionRace hammers WritePrometheusTracer while every instrument
// family — counters, endpoint histograms, gauges, the per-server heartbeat
// and up-state maps, and the tracer — is being written concurrently. Run
// under -race this is the exposition's data-race gate; without it, it still
// checks nothing panics when scrapes overlap recording.
func TestExpositionRace(t *testing.T) {
	c := &Collector{}
	tr := trace.New(256)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	writer := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Record before checking stop: every instrument family must
			// exist by the final scrape even on a miserly scheduler.
			for i := 0; ; i++ {
				fn(i)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	writer(func(i int) { c.AddSteps(1); c.AddMessagesSent(2); c.AddRPCCalls(1) })
	writer(func(i int) { c.Endpoint("get").ObserveDuration(time.Duration(i%1000) * time.Microsecond) })
	writer(func(i int) { c.StepDurations().Observe(int64(i % 100)) })
	writer(func(i int) { c.QueueDepths().Set(i%8, int64(i%50)) })
	writer(func(i int) { c.HeartbeatRTT(i % 4).ObserveDuration(time.Duration(i%500) * time.Microsecond) })
	writer(func(i int) { c.ServerUp(i % 4).Set(int64(i % 2)) })
	writer(func(i int) {
		tr.RecordSpan(trace.Span{Kind: trace.KindStepEnd, Job: "hammer", N: int64(i)})
	})

	for i := 0; i < 200; i++ {
		if err := WritePrometheusTracer(io.Discard, c, tr); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		if i%50 == 0 {
			c.HeartbeatRTTSnapshots()
			c.ServerUpSnapshots()
			RecordStatsSpan(tr, c)
		}
	}
	close(stop)
	wg.Wait()

	// One final scrape after the dust settles must include the per-server
	// series the writers created.
	var sb strings.Builder
	if err := WritePrometheusTracer(&sb, c, tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ripple_heartbeat_rtt_seconds", "ripple_server_up"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"ripple/internal/kvstore"
	"ripple/internal/metrics"
	"ripple/internal/mq"
	"ripple/internal/trace"
)

// Injector makes the schedule's injection decisions and records the injected
// faults. One Injector is shared by the store wrapper (Wrap) and the mq
// system (mq.WithFaults(inj)); it is safe for concurrent use.
//
// Determinism: each decision is a pure function of (seed, fault kind,
// normalized name, part, per-cell op index). The per-cell index only counts
// operations of that cell, so as long as the workload performs the same
// operations per cell, the same seed injects the same fault set — no matter
// how goroutines interleave. Engine-generated table names embed a run
// sequence number; normalization replaces numeric name segments so the
// decisions are stable across runs within one process too.
type Injector struct {
	sched   Schedule
	metrics *metrics.Collector
	tracer  *trace.Tracer

	mu         sync.Mutex
	counters   map[cell]int64
	records    []Record
	dispatches int64
	killFired  []bool
	wireSt     *wireState // lazy wire-fault bookkeeping (wire.go)
}

// cell identifies one decision stream.
type cell struct {
	kind string
	name string
	part int
}

// Record is one injected fault: fault kind, the (normalized) table or queue
// set it hit, the part/queue, and the per-cell operation index it fired at.
// The record set — not its order — is what a fixed seed reproduces.
type Record struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	Part int    `json:"part"`
	N    int64  `json:"n"`
}

func (r Record) String() string {
	return fmt.Sprintf("%s %s[%d]#%d", r.Kind, r.Name, r.Part, r.N)
}

// Option configures an Injector.
type Option func(*Injector)

// WithMetrics counts injected faults on the collector.
func WithMetrics(m *metrics.Collector) Option {
	return func(inj *Injector) { inj.metrics = m }
}

// WithTracer records a trace.KindFault span per injected fault.
func WithTracer(t *trace.Tracer) Option {
	return func(inj *Injector) { inj.tracer = t }
}

// NewInjector creates an injector for the schedule.
func NewInjector(sched Schedule, opts ...Option) *Injector {
	sort.Slice(sched.Kills, func(i, j int) bool {
		return sched.Kills[i].AfterDispatches < sched.Kills[j].AfterDispatches
	})
	inj := &Injector{
		sched:     sched,
		counters:  make(map[cell]int64),
		killFired: make([]bool, len(sched.Kills)),
	}
	for _, o := range opts {
		o(inj)
	}
	return inj
}

// Schedule returns the injector's (kill-sorted) schedule.
func (inj *Injector) Schedule() Schedule { return inj.sched }

// Records returns the injected faults so far, sorted into a canonical order
// so two runs with the same seed compare equal.
func (inj *Injector) Records() []Record {
	inj.mu.Lock()
	out := append([]Record(nil), inj.records...)
	inj.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		return a.N < b.N
	})
	return out
}

// roll advances the cell's op counter and reports the decision variate.
func (inj *Injector) roll(kind, name string, part int) (int64, float64) {
	c := cell{kind: kind, name: name, part: part}
	inj.mu.Lock()
	n := inj.counters[c]
	inj.counters[c] = n + 1
	inj.mu.Unlock()
	return n, uniform(inj.sched.Seed, kind, name, part, n)
}

func (inj *Injector) record(kind, name string, part int, n int64) {
	inj.mu.Lock()
	inj.records = append(inj.records, Record{Kind: kind, Name: name, Part: part, N: n})
	inj.mu.Unlock()
	inj.metrics.AddFaultsInjected(1)
	inj.tracer.Record(trace.KindFault, kind+":"+name, 0, part, n, 0)
}

// tableFault decides the fate of one table client operation.
func (inj *Injector) tableFault(name string, part int) error {
	norm := normalizeName(name)
	if p := inj.sched.StoreErrRate; p > 0 {
		if n, u := inj.roll("store.err", norm, part); u < p {
			inj.record("store.err", norm, part, n)
			return fmt.Errorf("chaos: injected store fault on %s[%d]: %w", name, part, kvstore.ErrTransient)
		}
	}
	if p := inj.sched.StoreDelayRate; p > 0 && inj.sched.StoreDelay > 0 {
		if n, u := inj.roll("store.delay", norm, part); u < p {
			inj.record("store.delay", norm, part, n)
			time.Sleep(inj.sched.StoreDelay)
		}
	}
	return nil
}

// agentFault decides the fate of one agent dispatch; it also advances the
// dispatch clock and fires any due scheduled kills on target.
func (inj *Injector) agentFault(target kvstore.Store, name string, part int) error {
	inj.fireKills(target)
	norm := normalizeName(name)
	if p := inj.sched.AgentErrRate; p > 0 {
		if n, u := inj.roll("agent.err", norm, part); u < p {
			inj.record("agent.err", norm, part, n)
			return fmt.Errorf("chaos: injected dispatch fault on %s[%d]: %w", name, part, kvstore.ErrTransient)
		}
	}
	return nil
}

// fireKills advances the dispatch clock and executes due kills. A kill whose
// table does not exist yet stays armed for a later dispatch.
func (inj *Injector) fireKills(target kvstore.Store) {
	inj.mu.Lock()
	inj.dispatches++
	d := inj.dispatches
	var due []int
	for i, k := range inj.sched.Kills {
		if !inj.killFired[i] && k.AfterDispatches < d {
			due = append(due, i)
		}
	}
	inj.mu.Unlock()
	if len(due) == 0 {
		return
	}
	rep, ok := target.(kvstore.Replicated)
	if !ok {
		return
	}
	for _, i := range due {
		k := inj.sched.Kills[i]
		err := rep.FailPrimary(k.Table, k.Part)
		if errors.Is(err, kvstore.ErrNoTable) {
			continue // table not created yet; keep the kill armed
		}
		inj.mu.Lock()
		fired := inj.killFired[i]
		inj.killFired[i] = true
		inj.mu.Unlock()
		if !fired {
			inj.record("kill", k.Table, k.Part, k.AfterDispatches)
		}
	}
}

// PutFault implements mq.FaultInjector for cross-part queue Puts.
func (inj *Injector) PutFault(set string, queue int) mq.Fault {
	norm := normalizeName(set)
	var f mq.Fault
	if p := inj.sched.MQErrRate; p > 0 {
		if n, u := inj.roll("mq.err", norm, queue); u < p {
			inj.record("mq.err", norm, queue, n)
			f.Err = fmt.Errorf("chaos: injected mq fault on %s[%d]: %w", set, queue, mq.ErrTransient)
			return f
		}
	}
	if p := inj.sched.MQDupRate; p > 0 {
		if n, u := inj.roll("mq.dup", norm, queue); u < p {
			inj.record("mq.dup", norm, queue, n)
			f.Duplicates = 1
		}
	}
	if p := inj.sched.MQDelayRate; p > 0 && inj.sched.MQDelay > 0 {
		if n, u := inj.roll("mq.delay", norm, queue); u < p {
			inj.record("mq.delay", norm, queue, n)
			f.Delay = inj.sched.MQDelay
		}
	}
	return f
}

// FsyncFault implements diskstore.DiskInjector for WAL and SSTable fsyncs:
// it may stall the fsync (disk.slow), fail it with a retryable error
// (disk.fsync), or both decisions may pass and the fsync proceeds normally.
func (inj *Injector) FsyncFault(table string, part int) (time.Duration, error) {
	norm := normalizeName(table)
	var delay time.Duration
	if p := inj.sched.DiskSlowFsyncRate; p > 0 && inj.sched.DiskSlowFsync > 0 {
		if n, u := inj.roll("disk.slow", norm, part); u < p {
			inj.record("disk.slow", norm, part, n)
			delay = inj.sched.DiskSlowFsync
		}
	}
	if p := inj.sched.DiskFsyncErrRate; p > 0 {
		if n, u := inj.roll("disk.fsync", norm, part); u < p {
			inj.record("disk.fsync", norm, part, n)
			return delay, fmt.Errorf("chaos: injected fsync fault on %s[%d]: %w", table, part, kvstore.ErrTransient)
		}
	}
	return delay, nil
}

// TornTail implements diskstore.DiskInjector: when a part's write-ahead log
// is opened it may report a positive clip, and the store truncates that many
// bytes off the log's end before replay — the recovery path must then clip
// the torn final record instead of failing.
func (inj *Injector) TornTail(table string, part int) int {
	p := inj.sched.DiskTornTailRate
	if p <= 0 {
		return 0
	}
	norm := normalizeName(table)
	n, u := inj.roll("disk.torn", norm, part)
	if u >= p {
		return 0
	}
	inj.record("disk.torn", norm, part, n)
	// Deterministic clip width in [1, 64] from the same variate.
	return 1 + int(u/p*64)
}

// normalizeName replaces all-digit dot-segments of an engine-generated name
// ("__ebsp.pagerank.3.transport" → "__ebsp.pagerank.#.transport") so decision
// streams are stable across run sequence numbers.
func normalizeName(name string) string {
	segs := strings.Split(name, ".")
	for i, s := range segs {
		if s != "" && strings.Trim(s, "0123456789") == "" {
			segs[i] = "#"
		}
	}
	return strings.Join(segs, ".")
}

// uniform maps the decision coordinates to a deterministic variate in [0,1).
func uniform(seed int64, kind, name string, part int, n int64) float64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(name))
	var buf [24]byte
	putInt64(buf[0:], seed)
	putInt64(buf[8:], int64(part))
	putInt64(buf[16:], n)
	h.Write(buf[:])
	x := h.Sum64()
	// splitmix64 finalizer for avalanche.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(v) >> (8 * i))
	}
}

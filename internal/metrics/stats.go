package metrics

import (
	"fmt"

	"ripple/internal/trace"
)

// RecordStatsSpan records one KindStats span carrying the collector's
// counter snapshot as string attributes. It is the "final flush" record a
// part-server appends to its trace dump on graceful shutdown, so a drained
// server's counters survive next to its spans in one file; JSONL parsers
// that don't know the kind just see another span line.
//
// Either argument may be nil: a nil tracer makes the call a no-op, a nil
// collector records a span with empty attrs.
func RecordStatsSpan(t *trace.Tracer, c *Collector) {
	if t == nil {
		return
	}
	s := c.Snapshot()
	attrs := map[string]string{
		"steps":            fmt.Sprintf("%d", s.Steps),
		"barriers":         fmt.Sprintf("%d", s.Barriers),
		"messages_sent":    fmt.Sprintf("%d", s.MessagesSent),
		"marshalled_bytes": fmt.Sprintf("%d", s.MarshalledBytes),
		"store_gets":       fmt.Sprintf("%d", s.StoreGets),
		"store_puts":       fmt.Sprintf("%d", s.StorePuts),
		"store_deletes":    fmt.Sprintf("%d", s.StoreDeletes),
		"retries":          fmt.Sprintf("%d", s.Retries),
		"failovers":        fmt.Sprintf("%d", s.Failovers),
		"rpc_calls":        fmt.Sprintf("%d", s.RPCCalls),
		"rpc_retries":      fmt.Sprintf("%d", s.RPCRetries),
	}
	t.RecordSpan(trace.Span{Kind: trace.KindStats, Job: "stats", Part: -1, Attrs: attrs})
}
